#include "core/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/config.hpp"
#include "io/read.hpp"
#include "util/checksum.hpp"

namespace dibella::core {

namespace fs = std::filesystem;

namespace {

constexpr u32 kPayloadMagic = 0x4442434Bu;  // "DBCK"
const char kManifestName[] = "manifest.tsv";
const char kManifestHeader[] = "dibella-checkpoint\tv1";

template <class T>
u32 crc_value(const T& v, u32 crc) {
  return util::crc32(&v, sizeof(T), crc);
}

}  // namespace

const char* checkpoint_stage_name(CheckpointStage stage) {
  switch (stage) {
    case CheckpointStage::kNone: return "none";
    case CheckpointStage::kBloom: return "bloom";
    case CheckpointStage::kHashTable: return "ht";
    case CheckpointStage::kOverlap: return "overlap";
    case CheckpointStage::kAlignment: return "align";
  }
  return "unknown";
}

u32 checkpoint_fingerprint(const std::vector<io::Read>& reads,
                           const PipelineConfig& config, int ranks) {
  u32 crc = util::crc32("dibella-ckpt-v1", 15);
  crc = crc_value(ranks, crc);
  const u64 n = reads.size();
  crc = crc_value(n, crc);
  for (const io::Read& r : reads) {
    crc = crc_value(r.gid, crc);
    crc = util::crc32(r.seq.data(), r.seq.size(), crc);
  }
  // Output-determining config fields only; schedule knobs (overlap_comm,
  // blocks, chunk/batch sizes) are excluded — outputs are invariant to them.
  crc = crc_value(config.k, crc);
  crc = crc_value(config.min_kmer_count, crc);
  crc = crc_value(config.resolved_max_kmer_count(), crc);
  crc = crc_value(config.minimizer_w, crc);
  crc = crc_value(config.syncmer, crc);
  crc = crc_value(config.chain, crc);
  crc = crc_value(config.seed_filter.policy, crc);
  crc = crc_value(config.seed_filter.min_distance, crc);
  crc = crc_value(config.seed_filter.max_seeds, crc);
  crc = crc_value(config.scoring.match, crc);
  crc = crc_value(config.scoring.mismatch, crc);
  crc = crc_value(config.scoring.gap, crc);
  crc = crc_value(config.xdrop, crc);
  crc = crc_value(config.min_report_score, crc);
  return crc;
}

std::shared_ptr<CheckpointSet> CheckpointSet::start(const std::string& dir,
                                                    u32 fingerprint, int ranks) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  DIBELLA_CHECK(!ec, "CheckpointSet: cannot create checkpoint directory " + dir);
  auto set = std::shared_ptr<CheckpointSet>(new CheckpointSet(dir, fingerprint, ranks));
  std::ofstream out(set->manifest_path(), std::ios::trunc);
  DIBELLA_CHECK(out.good(), "CheckpointSet: cannot write " + set->manifest_path());
  out << kManifestHeader << "\n"
      << "fingerprint\t" << fingerprint << "\n"
      << "ranks\t" << ranks << "\n";
  out.close();
  DIBELLA_CHECK(out.good(), "CheckpointSet: short write to " + set->manifest_path());
  return set;
}

std::shared_ptr<CheckpointSet> CheckpointSet::open(const std::string& dir,
                                                   u32 fingerprint, int ranks) {
  auto set = std::shared_ptr<CheckpointSet>(new CheckpointSet(dir, fingerprint, ranks));
  std::ifstream in(set->manifest_path());
  DIBELLA_CHECK(in.good(), "CheckpointSet: no checkpoint manifest at " +
                               set->manifest_path() + " (nothing to resume)");
  std::string line;
  DIBELLA_CHECK(std::getline(in, line) && line == kManifestHeader,
                "CheckpointSet: " + set->manifest_path() +
                    " is not a checkpoint manifest");
  bool saw_fingerprint = false;
  bool saw_ranks = false;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) continue;
    if (key == "fingerprint") {
      u64 stored = 0;
      DIBELLA_CHECK(static_cast<bool>(fields >> stored),
                    "CheckpointSet: malformed fingerprint line in manifest");
      DIBELLA_CHECK(
          stored == fingerprint,
          "CheckpointSet: checkpoint at " + dir +
              " was written by a different run (input reads, rank count, or "
              "output-determining parameters changed); refusing to resume");
      saw_fingerprint = true;
    } else if (key == "ranks") {
      int stored = 0;
      DIBELLA_CHECK(static_cast<bool>(fields >> stored),
                    "CheckpointSet: malformed ranks line in manifest");
      DIBELLA_CHECK(stored == ranks,
                    "CheckpointSet: checkpoint at " + dir + " was written with " +
                        std::to_string(stored) + " ranks; this run has " +
                        std::to_string(ranks));
      saw_ranks = true;
    } else if (key == "complete") {
      u32 stage = 0;
      DIBELLA_CHECK(static_cast<bool>(fields >> stage) &&
                        stage >= static_cast<u32>(CheckpointStage::kBloom) &&
                        stage <= static_cast<u32>(CheckpointStage::kAlignment),
                    "CheckpointSet: malformed completion line in manifest");
      if (stage > static_cast<u32>(set->last_complete_)) {
        set->last_complete_ = static_cast<CheckpointStage>(stage);
      }
    }
  }
  DIBELLA_CHECK(saw_fingerprint && saw_ranks,
                "CheckpointSet: manifest at " + set->manifest_path() +
                    " is missing its fingerprint or rank count");
  DIBELLA_CHECK(set->last_complete_ != CheckpointStage::kNone,
                "CheckpointSet: checkpoint at " + dir +
                    " records no completed stage; nothing to resume");
  return set;
}

CheckpointStage CheckpointSet::probe_last_complete(const std::string& dir) {
  std::ifstream in((fs::path(dir) / kManifestName).string());
  if (!in.good()) return CheckpointStage::kNone;
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) return CheckpointStage::kNone;
  CheckpointStage last = CheckpointStage::kNone;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    u32 stage = 0;
    if ((fields >> key >> stage) && key == "complete" &&
        stage >= static_cast<u32>(CheckpointStage::kBloom) &&
        stage <= static_cast<u32>(CheckpointStage::kAlignment) &&
        stage > static_cast<u32>(last)) {
      last = static_cast<CheckpointStage>(stage);
    }
  }
  return last;
}

std::string CheckpointSet::manifest_path() const {
  return (fs::path(dir_) / kManifestName).string();
}

std::string CheckpointSet::payload_path(CheckpointStage stage, int rank) const {
  return (fs::path(dir_) / ("stage" + std::to_string(static_cast<u32>(stage)) + "." +
                            checkpoint_stage_name(stage) + ".r" +
                            std::to_string(rank) + ".bin"))
      .string();
}

void CheckpointSet::write_payload(CheckpointStage stage, int rank,
                                  const std::vector<u8>& bytes) const {
  const std::string path = payload_path(stage, rank);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DIBELLA_CHECK(out.good(), "CheckpointSet: cannot open " + path);
  const u32 magic = kPayloadMagic;
  const u64 payload = bytes.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&payload), sizeof(payload));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  const u32 crc = util::crc32(bytes.data(), bytes.size());
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  DIBELLA_CHECK(out.good(), "CheckpointSet: short write to " + path);
  std::lock_guard<std::mutex> lock(io_mu_);
  ++io_.payloads_written;
  io_.bytes_written += bytes.size();
}

std::vector<u8> CheckpointSet::read_payload(CheckpointStage stage, int rank) const {
  const std::string path = payload_path(stage, rank);
  std::ifstream in(path, std::ios::binary);
  DIBELLA_CHECK(in.good(), "CheckpointSet: missing checkpoint payload " + path);
  u32 magic = 0;
  u64 payload = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&payload), sizeof(payload));
  DIBELLA_CHECK(in.good() && magic == kPayloadMagic,
                "CheckpointSet: " + path + " is not a checkpoint payload (bad magic)");
  std::vector<u8> bytes(static_cast<std::size_t>(payload));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(payload));
  DIBELLA_CHECK(static_cast<u64>(in.gcount()) == payload,
                "CheckpointSet: truncated checkpoint payload " + path);
  u32 stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  DIBELLA_CHECK(in.gcount() == static_cast<std::streamsize>(sizeof(stored)) &&
                    stored == util::crc32(bytes.data(), bytes.size()),
                "CheckpointSet: CRC32 mismatch in checkpoint payload " + path +
                    " (corrupted on disk)");
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    ++io_.payloads_read;
    io_.bytes_read += bytes.size();
  }
  return bytes;
}

void CheckpointSet::mark_complete(CheckpointStage stage) {
  std::ofstream out(manifest_path(), std::ios::app);
  DIBELLA_CHECK(out.good(), "CheckpointSet: cannot append to " + manifest_path());
  out << "complete\t" << static_cast<u32>(stage) << "\t"
      << checkpoint_stage_name(stage) << "\n";
  out.close();
  DIBELLA_CHECK(out.good(), "CheckpointSet: short write to " + manifest_path());
  last_complete_ = stage;
}

}  // namespace dibella::core
