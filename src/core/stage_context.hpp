#pragma once
/// \file stage_context.hpp
/// Per-rank execution context handed to every pipeline stage: the
/// communicator plus the rank's trace, with an RAII helper for timing
/// compute sections with the thread CPU clock.

#include <string>
#include <utility>

#include "comm/communicator.hpp"
#include "netsim/rank_trace.hpp"
#include "util/timer.hpp"

namespace dibella::core {

/// Everything a stage needs from its rank.
struct StageContext {
  comm::Communicator& comm;
  netsim::RankTrace& trace;

  /// Wire the communicator's record stream into the trace so exchange
  /// events interleave with compute events, and bracket nonblocking
  /// exchanges with start markers so the cost model can tell which compute
  /// ran while an exchange was in flight. Call once per rank before any
  /// stage runs.
  void attach() {
    comm.set_record_sink([t = &trace](const comm::ExchangeRecord& rec) {
      t->add_exchange(rec.seq);
    });
    comm.set_exchange_start_sink([t = &trace] { t->add_exchange_start(); });
  }
};

/// RAII compute-section timer: measures thread CPU seconds and records a
/// compute event on scope exit. The working set (for the cache model) may be
/// set any time before destruction.
class ComputeScope {
 public:
  ComputeScope(StageContext& ctx, std::string stage, u64 working_set_bytes = 0)
      : ctx_(ctx), stage_(std::move(stage)), working_set_(working_set_bytes) {}

  ComputeScope(const ComputeScope&) = delete;
  ComputeScope& operator=(const ComputeScope&) = delete;

  void set_working_set(u64 bytes) { working_set_ = bytes; }

  ~ComputeScope() { ctx_.trace.add_compute(std::move(stage_), timer_.seconds(), working_set_); }

 private:
  StageContext& ctx_;
  std::string stage_;
  u64 working_set_;
  util::ThreadCpuTimer timer_;
};

}  // namespace dibella::core
