#pragma once
/// \file stage_context.hpp
/// Per-rank execution context handed to every pipeline stage: the
/// communicator plus the rank's trace, with an RAII helper for timing
/// compute sections with the thread CPU clock.
///
/// The context also carries the observability layer (src/obs/): a wallclock
/// span lane (`spans`, null when --trace/--profile-report are off — every
/// span call degrades to a no-op) and the rank's metrics registry
/// (`metrics`, always attached by run_pipeline; null only in bare-bones
/// tests, where metric() writes into a thread-local scratch registry).

#include <string>
#include <utility>

#include "comm/communicator.hpp"
#include "netsim/rank_trace.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/timer.hpp"

namespace dibella::core {

/// Everything a stage needs from its rank.
struct StageContext {
  comm::Communicator& comm;
  netsim::RankTrace& trace;
  obs::Trace* spans = nullptr;      ///< wallclock span lanes (null = tracing off)
  obs::Registry* metrics = nullptr; ///< this rank's metrics registry
  /// Wire-level exchange accounting (call counts, framed bytes, per-call
  /// size histogram). Kept out of `metrics`: chunking and batching differ
  /// between the overlapped and bulk-synchronous schedules, so these rows
  /// would break counters.tsv's byte-identity across schedules. They dump
  /// into profile.tsv instead.
  obs::Registry* wire_metrics = nullptr;

  /// Open a wallclock span on this rank's lane (no-op when tracing is off).
  obs::Span span(const char* name) { return obs::Span(spans, comm.rank(), name); }

  /// A counter in this rank's registry; falls back to a thread-local scratch
  /// registry when none is attached so stage code never branches.
  obs::Counter& metric(const std::string& name, obs::Labels labels = {}) {
    if (metrics) return metrics->counter(name, std::move(labels));
    thread_local obs::Registry scratch;
    return scratch.counter("scratch");
  }

  /// Wire the communicator's record stream into the trace so exchange
  /// events interleave with compute events, and bracket nonblocking
  /// exchanges with start markers so the cost model can tell which compute
  /// ran while an exchange was in flight. When span collection is on, the
  /// same sinks emit the wallclock counterpart: an async
  /// `exchange:inflight` window per nonblocking exchange (bytes / chunks /
  /// retries / exposed_us / hidden_us args) plus complete events for the
  /// blocked portions. Call once per rank before any stage runs; `this`
  /// must outlive the communicator's sinks (it does — both live for the
  /// whole World::run closure).
  void attach() {
    comm.set_exchange_start_sink([this] {
      trace.add_exchange_start();
      if (spans) {
        obs::RankTimeline& lane = spans->lane(comm.rank());
        inflight_async_id_ = lane.next_async_id();
        obs::SpanEvent ev;
        ev.phase = obs::SpanEvent::Phase::kAsyncBegin;
        ev.name = "exchange:inflight";
        ev.t_ns = spans->now_ns();
        ev.id = inflight_async_id_;
        lane.push(ev);
      }
    });
    comm.set_record_sink([this](const comm::ExchangeRecord& rec) {
      trace.add_exchange(rec.seq);
      observe_exchange(rec);
    });
  }

  /// Async pairing id of the open exchange window. Internal state of the
  /// sinks above; public only so StageContext stays an aggregate.
  u64 inflight_async_id_ = 0;

 private:
  static const char* collective_span_name(comm::CollectiveOp op) {
    switch (op) {
      case comm::CollectiveOp::kAlltoallv: return "collective:alltoallv";
      case comm::CollectiveOp::kAllgather: return "collective:allgather";
      case comm::CollectiveOp::kAllreduce: return "collective:allreduce";
      case comm::CollectiveOp::kBroadcast: return "collective:broadcast";
      case comm::CollectiveOp::kGather: return "collective:gather";
      case comm::CollectiveOp::kBarrier: return "collective:barrier";
      case comm::CollectiveOp::kExchange: return "collective:exchange";
    }
    return "collective";
  }

  void observe_exchange(const comm::ExchangeRecord& rec) {
    if (wire_metrics) {
      // Deterministic for a fixed schedule (bytes and call counts depend on
      // input, config, and comm schedule — never on wallclock), but framed
      // sizes and call counts differ between overlapped and bulk-synchronous
      // runs, hence the separate wire registry.
      obs::Labels by_stage{{"stage", rec.stage}};
      wire_metrics->counter("exchange_calls", by_stage).increment();
      wire_metrics->counter("exchange_bytes", by_stage).add(rec.total_bytes());
      wire_metrics->histogram("exchange_bytes_per_call").add(rec.total_bytes());
    }
    if (!spans) return;
    obs::RankTimeline& lane = spans->lane(comm.rank());
    const u64 now = spans->now_ns();
    const auto to_ns = [](double s) { return static_cast<u64>(s * 1e9); };
    if (rec.op == comm::CollectiveOp::kExchange && inflight_async_id_ != 0) {
      obs::SpanEvent done;
      done.phase = obs::SpanEvent::Phase::kAsyncEnd;
      done.name = "exchange:inflight";
      done.t_ns = now;
      done.id = inflight_async_id_;
      done.add_arg("bytes", rec.total_bytes());
      done.add_arg("chunks", rec.chunks);
      done.add_arg("retries", rec.retries);
      done.add_arg("seq", rec.seq);
      done.add_arg("exposed_us", to_ns(rec.wall_seconds) / 1000);
      done.add_arg("hidden_us", to_ns(rec.hidden_wall_seconds) / 1000);
      lane.push(done);
      inflight_async_id_ = 0;
      obs::SpanEvent waited;
      waited.phase = obs::SpanEvent::Phase::kComplete;
      waited.name = "exchange:exposed";
      waited.t_ns = now;
      waited.dur_ns = to_ns(rec.wall_seconds);
      waited.add_arg("bytes", rec.total_bytes());
      lane.push(waited);
    } else {
      obs::SpanEvent col;
      col.phase = obs::SpanEvent::Phase::kComplete;
      col.name = collective_span_name(rec.op);
      col.t_ns = now;
      col.dur_ns = to_ns(rec.wall_seconds);
      col.add_arg("bytes", rec.total_bytes());
      lane.push(col);
    }
  }
};

/// RAII compute-section timer: measures thread CPU seconds and records a
/// compute event on scope exit. The working set (for the cache model) may be
/// set any time before destruction.
class ComputeScope {
 public:
  ComputeScope(StageContext& ctx, std::string stage, u64 working_set_bytes = 0)
      : ctx_(ctx), stage_(std::move(stage)), working_set_(working_set_bytes) {}

  ComputeScope(const ComputeScope&) = delete;
  ComputeScope& operator=(const ComputeScope&) = delete;

  void set_working_set(u64 bytes) { working_set_ = bytes; }

  ~ComputeScope() { ctx_.trace.add_compute(std::move(stage_), timer_.seconds(), working_set_); }

 private:
  StageContext& ctx_;
  std::string stage_;
  u64 working_set_;
  util::ThreadCpuTimer timer_;
};

}  // namespace dibella::core
