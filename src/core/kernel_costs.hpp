#pragma once
/// \file kernel_costs.hpp
/// Calibrated per-unit kernel costs for compute-time accounting.
///
/// Why this exists: pipeline compute segments at high simulated rank counts
/// are sub-millisecond, and sandboxed/virtualized kernels often advance the
/// per-thread CPU clock in multi-millisecond ticks (this host: 10 ms),
/// making direct segment timing pure noise. Instead, every stage counts its
/// *work units* exactly (k-mer windows parsed, Bloom insertions, table
/// insertions, DP cells, bytes copied) and converts them to seconds with
/// per-unit costs measured once per process by long (>= 100 ms)
/// single-threaded calibration loops against the fine-grained monotonic
/// clock. Compute accounting becomes deterministic while remaining tied to
/// this machine's real kernel speeds; data-dependent behaviour (x-drop
/// early exit, read-length variance) is preserved exactly because the unit
/// *counts* are exact. See DESIGN.md §2 and EXPERIMENTS.md "Methodology".

#include "util/common.hpp"

namespace dibella::core {

/// Seconds per unit of each kernel, measured on this host.
struct KernelCosts {
  double parse_per_kmer = 0.0;      ///< rolling canonical parse + buffer push
  double bloom_insert = 0.0;        ///< Bloom filter test_and_insert
  double table_insert = 0.0;        ///< hash table insert/add_occurrence
  double table_traverse = 0.0;      ///< per-key traversal (overlap stage)
  double pair_consolidate = 0.0;    ///< per-task map-based consolidation
  double xdrop_per_cell = 0.0;      ///< per DP cell of x-drop extension
  double per_byte_copy = 0.0;       ///< bulk byte marshalling
  double graph_probe = 0.0;         ///< per witness lookup of transitive reduction

  /// The process-wide calibrated instance (measured on first use; takes
  /// roughly half a second once).
  static const KernelCosts& get();
};

}  // namespace dibella::core
