#pragma once
/// \file config.hpp
/// Full pipeline configuration. Defaults mirror the paper's settings for
/// PacBio data: k = 17, singleton floor 2, high-frequency ceiling m from
/// BELLA's model (auto), one seed per pair (the low-intensity workload of
/// most paper figures).

#include <string>
#include <vector>

#include "align/scoring.hpp"
#include "overlap/seed_filter.hpp"
#include "sgraph/edge_class.hpp"
#include "util/common.hpp"

namespace dibella::core {

struct PipelineConfig {
  // --- k-mer analysis
  int k = 17;
  u32 min_kmer_count = 2;   ///< below: singleton (ignored)
  u32 max_kmer_count = 0;   ///< above: repeat (purged); 0 = auto via BELLA model
  double assumed_error_rate = 0.15;  ///< data model input for auto thresholds
  double assumed_coverage = 30.0;    ///< data model input for auto m

  // --- minimizer sketch (src/sketch/)
  /// Window minimizer sampling ahead of stages 1-3: only each read's window
  /// minimizers enter the Bloom routing, hash table, and overlap task
  /// exchange (~2/(w+1) of the dense seed volume). 0 or 1 = dense (every
  /// k-mer window). The driver defaults presets to w = 10.
  u32 minimizer_w = 0;
  /// Closed-syncmer selection (s = k - w + 1) instead of window minimizers;
  /// only meaningful when minimizer_w >= 2.
  bool syncmer = false;

  // --- streaming / memory bounds
  u64 batch_kmers = 1u << 20;  ///< per-rank occurrences per exchange batch
  double bloom_fpr = 0.05;

  // --- out-of-core block pipeline
  /// Split each rank's read partition into this many 2-bit packed blocks;
  /// stage 4 runs one read-exchange + alignment round per block and spills
  /// each round's records to an external sort/merge. 1 = the fully
  /// in-memory path. PAF/GFA/eval output is bitwise-identical either way.
  u32 blocks = 1;
  /// Cap on unpacked resident sequence bytes per rank (local blocks +
  /// remote-read cache); 0 = no cap. Only meaningful with blocks > 1.
  u64 memory_budget_bytes = 0;
  /// Directory for alignment spill runs (empty = system temp dir).
  std::string spill_dir;

  // --- communication schedule
  /// Run every stage's exchanges on the nonblocking comm::Exchanger,
  /// packing batch i+1 and consuming batch i-1 while batch i is in flight.
  /// Off = the paper's bulk-synchronous pack -> alltoallv -> consume loops.
  /// The alignment output and counters are bitwise-identical either way.
  bool overlap_comm = true;
  /// Mailbox chunk granularity of the nonblocking exchanges.
  u64 exchange_chunk_bytes = 1u << 20;
  /// Stage-3 wire tasks per destination per exchange batch.
  u64 batch_overlap_tasks = 1u << 18;

  // --- overlap / alignment
  overlap::SeedFilterConfig seed_filter = overlap::SeedFilterConfig::one_seed();
  align::Scoring scoring;
  int xdrop = 25;
  int min_report_score = 0;  ///< drop alignments scoring below this
  /// Colinear-chain each pair's seeds and extend only the best chain's
  /// representative anchor (align/chain.hpp) instead of extending every
  /// seed. One extension per pair; identical output under the default
  /// one-seed filter (a single seed chains to itself).
  bool chain = true;

  // --- string graph (optional stage 5: src/sgraph/)
  bool stage5 = false;          ///< classify + reduce + lay out the string graph
  i32 min_overlap_score = 0;    ///< drop records below this before the graph
  u32 sgraph_fuzz = sgraph::kDefaultFuzz;  ///< end tolerance (bp) for classification
  u64 batch_graph_bytes = 1u << 20;  ///< stage-5 bytes per destination per batch

  // --- fault tolerance (src/core/checkpoint.hpp)
  /// Directory for stage checkpoints (empty = checkpointing off). Each
  /// completed stage persists per-rank payloads + a manifest completion line.
  std::string checkpoint_dir;
  /// Resume from checkpoint_dir's last complete stage instead of starting
  /// fresh. Requires a checkpoint written by a matching run (same reads,
  /// rank count, and output-determining parameters). The resumed run's
  /// PAF/GFA/eval outputs are byte-identical to an uninterrupted run's.
  bool resume = false;
  /// Ranks whose shard state is dropped on resume (graceful degradation
  /// after a rank loss): these ranks restore nothing from the checkpoint and
  /// rejoin with empty state, so their pairs are honestly missing from the
  /// output. Only meaningful with resume.
  std::vector<int> degraded_ranks;

  // --- observability (src/obs/)
  /// Collect wallclock spans on every rank (the --trace/--profile-report
  /// input). Purely additive: PAF/GFA/eval outputs and the metrics registry
  /// are byte-identical with spans on or off.
  bool collect_spans = false;
  /// Per-rank span ring capacity (events); oldest events drop on overflow.
  u64 span_events_per_rank = u64{1} << 17;

  // --- ground-truth evaluation (src/eval/; needs a TruthTable at run time)
  /// Score the run against ground truth: overlap recall/precision/F1 plus
  /// stage-5 unitig fidelity. run_pipeline must be handed the truth table.
  bool eval = false;
  u64 eval_min_overlap = 2000;  ///< genomic bases that make a pair a true overlap
  u32 eval_len_bin = 500;       ///< recall-histogram bin width (bases)

  /// Resolved high-frequency ceiling (max_kmer_count, or the BELLA model
  /// value when max_kmer_count == 0).
  u32 resolved_max_kmer_count() const;
};

}  // namespace dibella::core
