#include "core/alignment_spill.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <system_error>

#include "util/common.hpp"

namespace dibella::core {

namespace fs = std::filesystem;

namespace {

/// Unique run-directory name within this machine: pid disambiguates
/// processes, the sequence number disambiguates pipeline runs in-process.
std::string next_spill_dir_name() {
  static std::atomic<u64> seq{0};
  return "dibella-spill-" + std::to_string(::getpid()) + "-" +
         std::to_string(seq.fetch_add(1));
}

}  // namespace

AlignmentSpillSet::AlignmentSpillSet(const std::string& dir_hint) {
  fs::path base = dir_hint.empty() ? fs::temp_directory_path() : fs::path(dir_hint);
  fs::path dir = base / next_spill_dir_name();
  std::error_code ec;
  fs::create_directories(dir, ec);
  DIBELLA_CHECK(!ec, "AlignmentSpillSet: cannot create spill directory " + dir.string());
  dir_ = dir.string();
}

AlignmentSpillSet::~AlignmentSpillSet() {
  std::error_code ec;
  fs::remove_all(dir_, ec);  // best effort; nothing to do about failure here
}

void AlignmentSpillSet::add_run(int rank,
                                const std::vector<align::AlignmentRecord>& sorted) {
  if (sorted.empty()) return;
  const u64 bytes = static_cast<u64>(sorted.size()) * sizeof(align::AlignmentRecord);
  std::lock_guard<std::mutex> lock(mu_);
  if (next_run_index_.size() <= static_cast<std::size_t>(rank)) {
    next_run_index_.resize(static_cast<std::size_t>(rank) + 1, 0);
  }
  const u32 index = next_run_index_[static_cast<std::size_t>(rank)]++;
  fs::path path = fs::path(dir_) / ("align.r" + std::to_string(rank) + "." +
                                    std::to_string(index) + ".bin");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DIBELLA_CHECK(out.good(), "AlignmentSpillSet: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(sorted.data()),
            static_cast<std::streamsize>(bytes));
  DIBELLA_CHECK(out.good(), "AlignmentSpillSet: short write to " + path.string());
  out.close();
  runs_.push_back({rank, path.string()});
  bytes_ += bytes;
}

std::vector<std::string> AlignmentSpillSet::rank_runs(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  for (const RunInfo& r : runs_) {
    if (r.rank == rank) paths.push_back(r.path);
  }
  return paths;
}

std::vector<std::string> AlignmentSpillSet::all_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(runs_.size());
  // (rank, spill order): runs_ holds append order across rank threads, so
  // group by rank for a deterministic merge-input order.
  int max_rank = -1;
  for (const RunInfo& r : runs_) max_rank = r.rank > max_rank ? r.rank : max_rank;
  for (int rank = 0; rank <= max_rank; ++rank) {
    for (const RunInfo& r : runs_) {
      if (r.rank == rank) paths.push_back(r.path);
    }
  }
  return paths;
}

u64 AlignmentSpillSet::spill_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

u64 AlignmentSpillSet::run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<u64>(runs_.size());
}

bool SpillMergeSource::Run::refill(std::size_t buffer_records) {
  if (eof) return false;
  buffer.resize(buffer_records);
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(buffer_records * sizeof(align::AlignmentRecord)));
  const auto got_bytes = static_cast<std::size_t>(in.gcount());
  DIBELLA_CHECK(got_bytes % sizeof(align::AlignmentRecord) == 0,
                "SpillMergeSource: truncated record in spill run");
  buffer.resize(got_bytes / sizeof(align::AlignmentRecord));
  pos = 0;
  if (buffer.empty()) {
    eof = true;
    return false;
  }
  return true;
}

SpillMergeSource::SpillMergeSource(const std::vector<std::string>& run_paths,
                                   std::size_t buffer_records)
    : buffer_records_(buffer_records ? buffer_records : 1) {
  runs_.reserve(run_paths.size());
  for (const std::string& path : run_paths) {
    auto run = std::make_unique<Run>();
    run->in.open(path, std::ios::binary);
    DIBELLA_CHECK(run->in.good(), "SpillMergeSource: cannot open " + path);
    if (run->refill(buffer_records_)) runs_.push_back(std::move(run));
  }
}

bool SpillMergeSource::next(align::AlignmentRecord& out) {
  // Linear scan over the run heads: the fan-in is ranks * blocks (tens),
  // far below where a heap would matter against the per-record copy cost.
  std::size_t best = runs_.size();
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (best == runs_.size()) {
      best = i;
      continue;
    }
    const align::AlignmentRecord& a = runs_[i]->head();
    const align::AlignmentRecord& b = runs_[best]->head();
    if (a.rid_a != b.rid_a ? a.rid_a < b.rid_a : a.rid_b < b.rid_b) best = i;
  }
  if (best == runs_.size()) return false;
  Run& r = *runs_[best];
  out = r.buffer[r.pos++];
  if (r.pos >= r.buffer.size() && !r.refill(buffer_records_)) {
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return true;
}

}  // namespace dibella::core
