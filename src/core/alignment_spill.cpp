#include "core/alignment_spill.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "util/checksum.hpp"
#include "util/common.hpp"

namespace dibella::core {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kRecordSize = sizeof(align::AlignmentRecord);
const char kSpillDirPrefix[] = "dibella-spill-";

/// Unique run-directory name within this machine: pid disambiguates
/// processes, the sequence number disambiguates pipeline runs in-process.
std::string next_spill_dir_name() {
  static std::atomic<u64> seq{0};
  return kSpillDirPrefix + std::to_string(::getpid()) + "-" +
         std::to_string(seq.fetch_add(1));
}

void write_run_header(std::ofstream& out, u64 payload_bytes) {
  const u32 magic = kSpillRunMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&payload_bytes), sizeof(payload_bytes));
}

}  // namespace

u64 write_alignment_run(const std::string& path,
                        const std::vector<align::AlignmentRecord>& sorted) {
  const u64 bytes = static_cast<u64>(sorted.size()) * kRecordSize;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DIBELLA_CHECK(out.good(), "write_alignment_run: cannot open " + path);
  write_run_header(out, bytes);
  out.write(reinterpret_cast<const char*>(sorted.data()),
            static_cast<std::streamsize>(bytes));
  const u32 crc = util::crc32(sorted.data(), static_cast<std::size_t>(bytes));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  DIBELLA_CHECK(out.good(), "write_alignment_run: short write to " + path);
  return bytes;
}

u64 write_alignment_run(const std::string& path, align::RecordSource& source) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DIBELLA_CHECK(out.good(), "write_alignment_run: cannot open " + path);
  write_run_header(out, 0);  // payload length patched below
  u64 bytes = 0;
  u32 crc = 0;
  align::AlignmentRecord rec;
  while (source.next(rec)) {
    out.write(reinterpret_cast<const char*>(&rec),
              static_cast<std::streamsize>(kRecordSize));
    crc = util::crc32(&rec, kRecordSize, crc);
    bytes += kRecordSize;
  }
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.seekp(sizeof(u32), std::ios::beg);
  out.write(reinterpret_cast<const char*>(&bytes), sizeof(bytes));
  DIBELLA_CHECK(out.good(), "write_alignment_run: short write to " + path);
  return bytes;
}

std::size_t reclaim_orphan_spill_dirs(const std::string& parent_dir) {
  std::size_t reclaimed = 0;
  std::error_code ec;
  fs::directory_iterator it(parent_dir, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSpillDirPrefix, 0) != 0) continue;
    // Parse the <pid> of dibella-spill-<pid>-<seq>.
    const std::string tail = name.substr(sizeof(kSpillDirPrefix) - 1);
    char* end = nullptr;
    errno = 0;
    const long pid = std::strtol(tail.c_str(), &end, 10);
    if (errno != 0 || end == tail.c_str() || *end != '-' || pid <= 0) continue;
    if (pid == static_cast<long>(::getpid())) continue;
    // Signal 0 probes existence without signalling; ESRCH = no such process,
    // so the directory's owner is dead and its spill runs are orphaned.
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) continue;
    std::error_code rm_ec;
    fs::remove_all(entry.path(), rm_ec);
    if (!rm_ec) ++reclaimed;
  }
  return reclaimed;
}

AlignmentSpillSet::AlignmentSpillSet(const std::string& dir_hint) {
  fs::path base = dir_hint.empty() ? fs::temp_directory_path() : fs::path(dir_hint);
  reclaim_orphan_spill_dirs(base.string());
  fs::path dir = base / next_spill_dir_name();
  std::error_code ec;
  fs::create_directories(dir, ec);
  DIBELLA_CHECK(!ec, "AlignmentSpillSet: cannot create spill directory " + dir.string());
  dir_ = dir.string();
}

AlignmentSpillSet::~AlignmentSpillSet() {
  std::error_code ec;
  fs::remove_all(dir_, ec);  // best effort; nothing to do about failure here
}

u64 AlignmentSpillSet::add_run(int rank,
                               const std::vector<align::AlignmentRecord>& sorted) {
  if (sorted.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (next_run_index_.size() <= static_cast<std::size_t>(rank)) {
    next_run_index_.resize(static_cast<std::size_t>(rank) + 1, 0);
  }
  const u32 index = next_run_index_[static_cast<std::size_t>(rank)]++;
  fs::path path = fs::path(dir_) / ("align.r" + std::to_string(rank) + "." +
                                    std::to_string(index) + ".bin");
  const u64 bytes = write_alignment_run(path.string(), sorted);
  runs_.push_back({rank, path.string()});
  bytes_ += bytes;
  return bytes;
}

std::vector<std::string> AlignmentSpillSet::rank_runs(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  for (const RunInfo& r : runs_) {
    if (r.rank == rank) paths.push_back(r.path);
  }
  return paths;
}

std::vector<std::string> AlignmentSpillSet::all_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(runs_.size());
  // (rank, spill order): runs_ holds append order across rank threads, so
  // group by rank for a deterministic merge-input order.
  int max_rank = -1;
  for (const RunInfo& r : runs_) max_rank = r.rank > max_rank ? r.rank : max_rank;
  for (int rank = 0; rank <= max_rank; ++rank) {
    for (const RunInfo& r : runs_) {
      if (r.rank == rank) paths.push_back(r.path);
    }
  }
  return paths;
}

u64 AlignmentSpillSet::spill_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

u64 AlignmentSpillSet::run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<u64>(runs_.size());
}

bool SpillMergeSource::Run::refill(std::size_t buffer_records) {
  if (eof) return false;
  if (remaining_bytes == 0) {
    // Payload fully streamed: the trailing CRC32 must match what we read.
    u32 stored = 0;
    in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    DIBELLA_CHECK(in.gcount() == static_cast<std::streamsize>(sizeof(stored)),
                  "SpillMergeSource: missing CRC32 trailer in " + path);
    DIBELLA_CHECK(stored == crc,
                  "SpillMergeSource: CRC32 mismatch in " + path +
                      " (spill run corrupted on disk)");
    eof = true;
    return false;
  }
  const u64 want = std::min<u64>(remaining_bytes,
                                 static_cast<u64>(buffer_records) * kRecordSize);
  buffer.resize(static_cast<std::size_t>(want) / kRecordSize);
  in.read(reinterpret_cast<char*>(buffer.data()), static_cast<std::streamsize>(want));
  const auto got_bytes = static_cast<std::size_t>(in.gcount());
  DIBELLA_CHECK(got_bytes == want,
                "SpillMergeSource: truncated spill run " + path + " (wanted " +
                    std::to_string(want) + " payload bytes, got " +
                    std::to_string(got_bytes) + ")");
  crc = util::crc32(buffer.data(), got_bytes, crc);
  remaining_bytes -= want;
  pos = 0;
  return true;
}

SpillMergeSource::SpillMergeSource(const std::vector<std::string>& run_paths,
                                   std::size_t buffer_records)
    : buffer_records_(buffer_records ? buffer_records : 1) {
  runs_.reserve(run_paths.size());
  for (const std::string& path : run_paths) {
    auto run = std::make_unique<Run>();
    run->path = path;
    run->in.open(path, std::ios::binary);
    DIBELLA_CHECK(run->in.good(), "SpillMergeSource: cannot open " + path);
    u32 magic = 0;
    u64 payload = 0;
    run->in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    run->in.read(reinterpret_cast<char*>(&payload), sizeof(payload));
    DIBELLA_CHECK(run->in.good() && magic == kSpillRunMagic,
                  "SpillMergeSource: " + path +
                      " is not a spill run (bad magic word)");
    DIBELLA_CHECK(payload % kRecordSize == 0,
                  "SpillMergeSource: " + path +
                      " payload length is not a multiple of the record size");
    run->remaining_bytes = payload;
    if (run->refill(buffer_records_)) runs_.push_back(std::move(run));
  }
}

bool SpillMergeSource::next(align::AlignmentRecord& out) {
  // Linear scan over the run heads: the fan-in is ranks * blocks (tens),
  // far below where a heap would matter against the per-record copy cost.
  std::size_t best = runs_.size();
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (best == runs_.size()) {
      best = i;
      continue;
    }
    const align::AlignmentRecord& a = runs_[i]->head();
    const align::AlignmentRecord& b = runs_[best]->head();
    if (a.rid_a != b.rid_a ? a.rid_a < b.rid_a : a.rid_b < b.rid_b) best = i;
  }
  if (best == runs_.size()) return false;
  Run& r = *runs_[best];
  out = r.buffer[r.pos++];
  if (r.pos >= r.buffer.size() && !r.refill(buffer_records_)) {
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return true;
}

}  // namespace dibella::core
