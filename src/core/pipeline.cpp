#include "core/pipeline.hpp"

#include <algorithm>

#include "bella/model.hpp"
#include "core/stage_context.hpp"

namespace dibella::core {

u32 PipelineConfig::resolved_max_kmer_count() const {
  if (max_kmer_count != 0) return max_kmer_count;
  return bella::reliable_max_frequency(assumed_coverage, assumed_error_rate, k);
}

netsim::TimingReport PipelineOutput::evaluate(const netsim::Platform& platform,
                                              const netsim::Topology& topology) const {
  netsim::CostModel model(platform, topology);
  return model.evaluate(traces, exchange_log);
}

PipelineOutput run_pipeline(comm::World& world, const std::vector<io::Read>& reads,
                            const PipelineConfig& config,
                            std::shared_ptr<const io::TruthTable> truth) {
  const int P = world.size();
  const u32 max_count = config.resolved_max_kmer_count();
  DIBELLA_CHECK(!config.eval || truth != nullptr,
                "config.eval requires a ground-truth table (see io/truth.hpp)");
  DIBELLA_CHECK(truth == nullptr || truth->size() == reads.size(),
                "truth table and read set disagree on read count");

  std::vector<u64> lens;
  lens.reserve(reads.size());
  for (const auto& r : reads) lens.push_back(r.seq.size());
  io::ReadPartition partition(lens, P);

  // Per-rank result slots (each rank writes only its own index).
  std::vector<netsim::RankTrace> traces(static_cast<std::size_t>(P));
  std::vector<bloom::BloomStageResult> bloom_res(static_cast<std::size_t>(P));
  std::vector<dht::HashTableStageResult> ht_res(static_cast<std::size_t>(P));
  std::vector<overlap::OverlapStageResult> ov_res(static_cast<std::size_t>(P));
  std::vector<align::ReadExchangeResult> rx_res(static_cast<std::size_t>(P));
  std::vector<align::AlignmentStageResult> al_res(static_cast<std::size_t>(P));
  std::vector<std::vector<align::AlignmentRecord>> records(static_cast<std::size_t>(P));
  std::vector<sgraph::StringGraphStageResult> sg_res(static_cast<std::size_t>(P));
  std::vector<sgraph::StringGraphOutput> sg_out(static_cast<std::size_t>(P));

  world.clear_exchange_records();
  world.run([&](comm::Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    StageContext ctx{comm, traces[rank]};
    ctx.attach();

    io::ReadStore store(reads, partition, comm.rank());
    if (truth) store.attach_truth(truth);

    // Stage 1: distributed Bloom filter; initializes candidate keys.
    dht::LocalKmerTable table(1024, max_count + 1);
    bloom::BloomStageConfig bcfg;
    bcfg.k = config.k;
    bcfg.batch_kmers = config.batch_kmers;
    bcfg.bloom_fpr = config.bloom_fpr;
    bcfg.assumed_error_rate = config.assumed_error_rate;
    bcfg.overlap_comm = config.overlap_comm;
    bcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    bloom_res[rank] = bloom::run_bloom_stage(ctx, store, bcfg, table);

    // Stage 2: distributed hash table with occurrence metadata + purge.
    dht::HashTableStageConfig hcfg;
    hcfg.k = config.k;
    hcfg.batch_instances = config.batch_kmers;
    hcfg.min_count = config.min_kmer_count;
    hcfg.max_count = max_count;
    hcfg.overlap_comm = config.overlap_comm;
    hcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    ht_res[rank] = dht::run_hashtable_stage(ctx, store, hcfg, table);

    // Stage 3: overlap detection (Algorithm 1) + task exchange.
    overlap::OverlapStageConfig ocfg;
    ocfg.seed_filter = config.seed_filter;
    ocfg.overlap_comm = config.overlap_comm;
    ocfg.batch_tasks = config.batch_overlap_tasks;
    ocfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    auto tasks = overlap::run_overlap_stage(ctx, table, partition, ocfg, &ov_res[rank]);

    // Stage 4a: replicate remote reads to match the task distribution.
    align::ReadExchangeConfig rcfg;
    rcfg.overlap_comm = config.overlap_comm;
    rcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    rx_res[rank] = align::run_read_exchange(ctx, store, tasks, rcfg);

    // Stage 4b: embarrassingly parallel x-drop alignment.
    align::AlignmentStageConfig acfg;
    acfg.scoring = config.scoring;
    acfg.xdrop = config.xdrop;
    acfg.k = config.k;
    acfg.min_score = config.min_report_score;
    records[rank] = align::run_alignment_stage(ctx, store, tasks, acfg, &al_res[rank]);

    // Stage 5 (optional): distributed string graph — classification, edge
    // partition, ghost-edge transitive reduction, unitig/GFA layout.
    if (config.stage5) {
      sgraph::StringGraphConfig scfg;
      scfg.min_overlap_score = config.min_overlap_score;
      scfg.fuzz = config.sgraph_fuzz;
      scfg.overlap_comm = config.overlap_comm;
      scfg.batch_bytes = config.batch_graph_bytes;
      scfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
      sg_out[rank] =
          sgraph::run_string_graph_stage(ctx, store, records[rank], scfg, &sg_res[rank]);
    }
  });

  // --- merge per-rank outputs.
  PipelineOutput out;
  out.partition = partition;
  out.traces = std::move(traces);
  out.exchange_log = world.exchange_records();

  std::size_t total_records = 0;
  for (const auto& v : records) total_records += v.size();
  out.alignments.reserve(total_records);
  for (auto& v : records) {
    out.alignments.insert(out.alignments.end(), v.begin(), v.end());
  }
  std::sort(out.alignments.begin(), out.alignments.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return x.rid_a != y.rid_a ? x.rid_a < y.rid_a : x.rid_b < y.rid_b;
            });

  auto& c = out.counters;
  c.max_kmer_count = max_count;
  out.per_rank_pairs_aligned.resize(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const auto rank = static_cast<std::size_t>(r);
    out.per_rank_pairs_aligned[rank] = al_res[rank].pairs_aligned;
    c.kmers_parsed += bloom_res[rank].parsed_instances;
    c.candidate_keys += bloom_res[rank].candidate_keys;
    c.retained_kmers += ht_res[rank].retained_keys;
    c.purged_keys += ht_res[rank].purged_keys;
    c.overlap_tasks += ov_res[rank].pair_tasks_formed;
    c.read_pairs += ov_res[rank].distinct_pairs;
    c.seeds_after_filter += ov_res[rank].seeds_after_filter;
    c.reads_exchanged += rx_res[rank].reads_requested;
    c.read_bytes_exchanged += rx_res[rank].bytes_received;
    c.pairs_aligned += al_res[rank].pairs_aligned;
    c.alignments_computed += al_res[rank].alignments_computed;
    c.dp_cells += al_res[rank].dp_cells;
    c.alignments_reported += al_res[rank].records_kept;
    c.sw_band_fallbacks += al_res[rank].sw_band_fallbacks;
    // Stage-5 ownership rules (records where produced, contained reads by
    // owner, edges by the owner of lo) make these plain sums.
    c.sg_contained_reads += sg_res[rank].contained_reads;
    c.sg_internal_records += sg_res[rank].internal_records;
    c.sg_dovetail_edges += sg_res[rank].edges_owned;
    c.sg_edges_removed += sg_res[rank].edges_removed;
    c.sg_edges_surviving += sg_res[rank].edges_surviving;
  }
  if (config.stage5) {
    out.string_graph = std::move(sg_out[0]);  // the rank-0 layout funnel
    c.sg_unitigs = out.string_graph.layout.unitigs.size();
    c.sg_components = out.string_graph.layout.components.size();
  }

  // Ground-truth evaluation over the merged (rank-independent) outputs, so
  // the report is as schedule- and rank-count-invariant as the PAF itself.
  if (config.eval) {
    eval::EvalConfig ecfg;
    ecfg.min_true_overlap = config.eval_min_overlap;
    ecfg.len_bin = config.eval_len_bin;
    out.eval = eval::evaluate(*truth, out.alignments,
                              config.stage5 ? &out.string_graph.layout : nullptr,
                              ecfg);
    out.eval_ran = true;
  }
  return out;
}

}  // namespace dibella::core
