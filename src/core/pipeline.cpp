#include "core/pipeline.hpp"

#include <algorithm>

#include "bella/model.hpp"
#include "comm/exchanger.hpp"
#include "core/checkpoint.hpp"
#include "core/stage_context.hpp"
#include "io/read_block.hpp"
#include "util/radix_sort.hpp"

namespace dibella::core {

u32 PipelineConfig::resolved_max_kmer_count() const {
  if (max_kmer_count != 0) return max_kmer_count;
  return bella::reliable_max_frequency(assumed_coverage, assumed_error_rate, k);
}

netsim::TimingReport PipelineOutput::evaluate(const netsim::Platform& platform,
                                              const netsim::Topology& topology) const {
  netsim::CostModel model(platform, topology);
  return model.evaluate(traces, exchange_log);
}

std::unique_ptr<align::RecordSource> PipelineOutput::alignment_source() const {
  if (spill) return std::make_unique<SpillMergeSource>(spill->all_runs());
  return std::make_unique<align::VectorRecordSource>(alignments);
}

std::vector<align::AlignmentRecord> PipelineOutput::merged_alignments() const {
  if (!spill) return alignments;
  std::vector<align::AlignmentRecord> merged;
  auto source = alignment_source();
  align::AlignmentRecord rec;
  while (source->next(rec)) merged.push_back(rec);
  return merged;
}

namespace {

/// Sort records into the global output order. Keys are the (rid_a, rid_b)
/// pair, unique across the whole run (each pair has one task owner), so the
/// chained radix passes produce the exact sequence the former comparison
/// sort did.
void sort_records(std::vector<align::AlignmentRecord>& records) {
  util::radix_sort_u64(records,
                       [](const align::AlignmentRecord& r) { return r.rid_b; });
  util::radix_sort_u64(records,
                       [](const align::AlignmentRecord& r) { return r.rid_a; });
}

// --- checkpoint payload codecs (framed with comm::ByteReader on the way
// back). Traversal order of the table does not matter: restores rebuild a
// table whose slot layout may differ, and downstream stages canonicalize.

std::vector<u8> serialize_table_keys(const dht::LocalKmerTable& table) {
  ByteWriter w;
  w.write<u64>(table.size());
  table.for_each(
      [&](const kmer::Kmer& key, u32, std::vector<dht::ReadOccurrence>&) { w.write(key); });
  return std::move(w.bytes);
}

void restore_table_keys(dht::LocalKmerTable& table, const std::vector<u8>& bytes) {
  comm::ByteReader r(bytes);
  const u64 n = r.read<u64>();
  for (u64 i = 0; i < n; ++i) table.insert_key(r.read<kmer::Kmer>());
  DIBELLA_CHECK(r.empty(), "checkpoint: trailing bytes in bloom payload");
}

std::vector<u8> serialize_table_full(const dht::LocalKmerTable& table) {
  ByteWriter w;
  w.write<u64>(table.size());
  table.for_each(
      [&](const kmer::Kmer& key, u32 count, std::vector<dht::ReadOccurrence>& occs) {
        w.write(key);
        w.write(count);
        w.write<u32>(static_cast<u32>(occs.size()));
        w.write_array(occs.data(), occs.size());
      });
  return std::move(w.bytes);
}

void restore_table_full(dht::LocalKmerTable& table, const std::vector<u8>& bytes) {
  comm::ByteReader r(bytes);
  const u64 n = r.read<u64>();
  std::vector<dht::ReadOccurrence> occs;
  for (u64 i = 0; i < n; ++i) {
    const auto key = r.read<kmer::Kmer>();
    const u32 count = r.read<u32>();
    const u32 n_occ = r.read<u32>();
    occs.clear();
    r.read_into(occs, n_occ);
    table.restore_key(key, count, occs.data(), n_occ);
  }
  DIBELLA_CHECK(r.empty(), "checkpoint: trailing bytes in ht payload");
}

std::vector<u8> serialize_tasks(const std::vector<overlap::AlignmentTask>& tasks) {
  ByteWriter w;
  w.write<u64>(tasks.size());
  for (const overlap::AlignmentTask& t : tasks) {
    w.write(t.rid_a);
    w.write(t.rid_b);
    w.write<u32>(static_cast<u32>(t.seeds.size()));
    w.write_array(t.seeds.data(), t.seeds.size());
  }
  return std::move(w.bytes);
}

std::vector<overlap::AlignmentTask> restore_tasks(const std::vector<u8>& bytes) {
  comm::ByteReader r(bytes);
  std::vector<overlap::AlignmentTask> tasks(static_cast<std::size_t>(r.read<u64>()));
  for (overlap::AlignmentTask& t : tasks) {
    t.rid_a = r.read<u64>();
    t.rid_b = r.read<u64>();
    const u32 n_seeds = r.read<u32>();
    t.seeds.reserve(n_seeds);
    r.read_into(t.seeds, n_seeds);
  }
  DIBELLA_CHECK(r.empty(), "checkpoint: trailing bytes in overlap payload");
  return tasks;
}

}  // namespace

PipelineOutput run_pipeline(comm::World& world, const std::vector<io::Read>& reads,
                            const PipelineConfig& config,
                            std::shared_ptr<const io::TruthTable> truth) {
  const int P = world.size();
  const u32 max_count = config.resolved_max_kmer_count();
  const u32 B = config.blocks;
  DIBELLA_CHECK(B >= 1, "config.blocks must be >= 1");
  DIBELLA_CHECK(!config.eval || truth != nullptr,
                "config.eval requires a ground-truth table (see io/truth.hpp)");
  DIBELLA_CHECK(truth == nullptr || truth->size() == reads.size(),
                "truth table and read set disagree on read count");

  std::vector<u64> lens;
  lens.reserve(reads.size());
  for (const auto& r : reads) lens.push_back(r.seq.size());
  io::ReadPartition partition(lens, P);

  // Checkpoint/restart setup. A fresh run with a checkpoint dir writes the
  // manifest header now; a --resume run validates the fingerprint and learns
  // which stages it may skip.
  DIBELLA_CHECK(!config.resume || !config.checkpoint_dir.empty(),
                "config.resume requires config.checkpoint_dir");
  DIBELLA_CHECK(config.degraded_ranks.empty() || config.resume,
                "config.degraded_ranks requires config.resume");
  for (int r : config.degraded_ranks) {
    DIBELLA_CHECK(r >= 0 && r < P, "degraded rank out of range");
  }
  std::shared_ptr<CheckpointSet> ckpt;
  CheckpointStage resume_from = CheckpointStage::kNone;
  if (!config.checkpoint_dir.empty()) {
    const u32 fp = checkpoint_fingerprint(reads, config, P);
    if (config.resume) {
      ckpt = CheckpointSet::open(config.checkpoint_dir, fp, P);
      resume_from = ckpt->last_complete();
    } else {
      ckpt = CheckpointSet::start(config.checkpoint_dir, fp, P);
    }
  }

  // Observability: one wallclock span lane per rank when tracing is on, and
  // one metrics registry per rank always (merged into the run registry after
  // the ranks join; single-writer during the run, so no contention).
  std::shared_ptr<obs::Trace> span_trace;
  if (config.collect_spans) {
    span_trace = std::make_shared<obs::Trace>(
        P, static_cast<std::size_t>(config.span_events_per_rank));
  }
  std::vector<obs::Registry> rank_metrics(static_cast<std::size_t>(P));
  std::vector<obs::Registry> rank_wire_metrics(static_cast<std::size_t>(P));

  // Per-rank result slots (each rank writes only its own index).
  std::vector<netsim::RankTrace> traces(static_cast<std::size_t>(P));
  std::vector<bloom::BloomStageResult> bloom_res(static_cast<std::size_t>(P));
  std::vector<dht::HashTableStageResult> ht_res(static_cast<std::size_t>(P));
  std::vector<overlap::OverlapStageResult> ov_res(static_cast<std::size_t>(P));
  std::vector<align::ReadExchangeResult> rx_res(static_cast<std::size_t>(P));
  std::vector<align::AlignmentStageResult> al_res(static_cast<std::size_t>(P));
  std::vector<std::vector<align::AlignmentRecord>> records(static_cast<std::size_t>(P));
  std::vector<sgraph::StringGraphStageResult> sg_res(static_cast<std::size_t>(P));
  std::vector<sgraph::StringGraphShard> sg_out(static_cast<std::size_t>(P));
  std::vector<io::ReadStoreMemoryStats> mem_res(static_cast<std::size_t>(P));

  // Block mode spills each round's sorted records instead of keeping them
  // resident; ranks (threads) append runs concurrently. A resume past the
  // alignment stage loads the checkpointed records resident instead — no
  // block rounds run, so no spill set is needed.
  std::shared_ptr<AlignmentSpillSet> spill;
  if (B > 1 && resume_from < CheckpointStage::kAlignment) {
    spill = std::make_shared<AlignmentSpillSet>(config.spill_dir);
  }

  world.clear_exchange_records();
  world.run([&](comm::Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    StageContext ctx{comm, traces[rank], span_trace.get(), &rank_metrics[rank],
                     &rank_wire_metrics[rank]};
    ctx.attach();

    io::BlockConfig block_cfg;
    block_cfg.blocks = B;
    block_cfg.memory_budget_bytes = config.memory_budget_bytes;
    io::ReadStore store(reads, partition, comm.rank(), block_cfg);
    if (truth) store.attach_truth(truth);

    // Graceful degradation: a degraded rank restores nothing from the
    // checkpoint — its shard's state is dropped and it rejoins empty.
    const bool degraded_me =
        std::find(config.degraded_ranks.begin(), config.degraded_ranks.end(),
                  comm.rank()) != config.degraded_ranks.end();

    // Persist a completed stage: every rank writes its payload, a barrier
    // makes them all durable, then rank 0 alone appends the manifest line.
    // Any abort past the barrier therefore sees the stage as complete, and
    // any abort before it sees the stage as absent — never half a set.
    const auto checkpoint_stage = [&](CheckpointStage stage, auto&& write_payload) {
      if (!ckpt) return;
      {
        obs::Span io_span = ctx.span("checkpoint:write");
        write_payload();
      }
      comm.barrier();
      if (comm.rank() == 0) ckpt->mark_complete(stage);
    };

    // Stage 1: distributed Bloom filter; initializes candidate keys.
    dht::LocalKmerTable table(1024, max_count + 1);
    if (resume_from < CheckpointStage::kBloom) {
      bloom::BloomStageConfig bcfg;
      bcfg.k = config.k;
      bcfg.batch_kmers = config.batch_kmers;
      bcfg.bloom_fpr = config.bloom_fpr;
      bcfg.assumed_error_rate = config.assumed_error_rate;
      bcfg.sketch = sketch::SketchConfig{config.minimizer_w, config.syncmer};
      bcfg.overlap_comm = config.overlap_comm;
      bcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
      {
        obs::Span stage_span = ctx.span("stage:bloom");
        bloom_res[rank] = bloom::run_bloom_stage(ctx, store, bcfg, table);
      }
      checkpoint_stage(CheckpointStage::kBloom, [&] {
        ckpt->write_payload(CheckpointStage::kBloom, comm.rank(),
                            serialize_table_keys(table));
      });
    } else if (resume_from == CheckpointStage::kBloom && !degraded_me) {
      obs::Span io_span = ctx.span("checkpoint:read");
      restore_table_keys(table,
                         ckpt->read_payload(CheckpointStage::kBloom, comm.rank()));
    }

    // Stage 2: distributed hash table with occurrence metadata + purge.
    if (resume_from < CheckpointStage::kHashTable) {
      dht::HashTableStageConfig hcfg;
      hcfg.k = config.k;
      hcfg.batch_instances = config.batch_kmers;
      hcfg.min_count = config.min_kmer_count;
      hcfg.max_count = max_count;
      hcfg.sketch = sketch::SketchConfig{config.minimizer_w, config.syncmer};
      hcfg.overlap_comm = config.overlap_comm;
      hcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
      {
        obs::Span stage_span = ctx.span("stage:ht");
        ht_res[rank] = dht::run_hashtable_stage(ctx, store, hcfg, table);
      }
      checkpoint_stage(CheckpointStage::kHashTable, [&] {
        ckpt->write_payload(CheckpointStage::kHashTable, comm.rank(),
                            serialize_table_full(table));
      });
    } else if (resume_from == CheckpointStage::kHashTable && !degraded_me) {
      obs::Span io_span = ctx.span("checkpoint:read");
      restore_table_full(table,
                         ckpt->read_payload(CheckpointStage::kHashTable, comm.rank()));
    }

    // Stage 3: overlap detection (Algorithm 1) + task exchange.
    std::vector<overlap::AlignmentTask> tasks;
    if (resume_from < CheckpointStage::kOverlap) {
      overlap::OverlapStageConfig ocfg;
      ocfg.seed_filter = config.seed_filter;
      ocfg.overlap_comm = config.overlap_comm;
      ocfg.batch_tasks = config.batch_overlap_tasks;
      ocfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
      {
        obs::Span stage_span = ctx.span("stage:overlap");
        tasks = overlap::run_overlap_stage(ctx, table, partition, ocfg, &ov_res[rank]);
      }
      checkpoint_stage(CheckpointStage::kOverlap, [&] {
        ckpt->write_payload(CheckpointStage::kOverlap, comm.rank(),
                            serialize_tasks(tasks));
      });
    } else if (resume_from == CheckpointStage::kOverlap && !degraded_me) {
      obs::Span io_span = ctx.span("checkpoint:read");
      tasks = restore_tasks(ckpt->read_payload(CheckpointStage::kOverlap, comm.rank()));
    }

    // Stage 4a+4b: read exchange then embarrassingly parallel x-drop
    // alignment. In-memory mode runs them once over all tasks; block mode
    // runs one round per block, and every task joins the round of its
    // *remote* read's block (both-local tasks follow rid_b's block). All
    // tasks needing a given remote gid therefore land in one round, so each
    // remote read is still fetched exactly once, and every rank's server
    // side only unpacks its own round block — the exchange totals match the
    // in-memory path exactly. Every rank runs exactly B rounds (the
    // exchange is collective), and B == 1 degenerates to one round over the
    // consolidated task order, i.e. today's behavior.
    if (resume_from < CheckpointStage::kAlignment) {
      align::ReadExchangeConfig rcfg;
      rcfg.overlap_comm = config.overlap_comm;
      rcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
      align::AlignmentStageConfig acfg;
      acfg.scoring = config.scoring;
      acfg.xdrop = config.xdrop;
      acfg.k = config.k;
      acfg.min_score = config.min_report_score;
      acfg.chain = config.chain;
      if (B == 1) {
        obs::Span stage_span = ctx.span("stage:align");
        rx_res[rank] = align::run_read_exchange(ctx, store, tasks, rcfg);
        records[rank] = align::run_alignment_stage(ctx, store, tasks, acfg, &al_res[rank]);
      } else {
        obs::Span stage_span = ctx.span("stage:align");
        std::vector<std::vector<overlap::AlignmentTask>> rounds(B);
        for (auto& t : tasks) {
          const u64 round_gid = !store.is_local(t.rid_a) ? t.rid_a : t.rid_b;
          rounds[io::block_of(partition, B, round_gid)].push_back(std::move(t));
        }
        tasks.clear();
        tasks.shrink_to_fit();
        for (u32 r = 0; r < B; ++r) {
          obs::Span round_span = ctx.span("round");
          round_span.arg("block", r);
          round_span.arg("tasks", rounds[r].size());
          const auto rx = align::run_read_exchange(ctx, store, rounds[r], rcfg);
          rx_res[rank].reads_requested += rx.reads_requested;
          rx_res[rank].reads_served += rx.reads_served;
          rx_res[rank].bytes_received += rx.bytes_received;
          align::AlignmentStageResult al;
          auto round_records = align::run_alignment_stage(ctx, store, rounds[r], acfg, &al);
          al_res[rank].pairs_aligned += al.pairs_aligned;
          al_res[rank].alignments_computed += al.alignments_computed;
          al_res[rank].dp_cells += al.dp_cells;
          al_res[rank].records_kept += al.records_kept;
          al_res[rank].sw_band_fallbacks += al.sw_band_fallbacks;
          sort_records(round_records);
          {
            obs::Span spill_span = ctx.span("spill:write");
            const u64 spilled = spill->add_run(comm.rank(), round_records);
            spill_span.arg("bytes", spilled);
            ctx.metric("spill_write_bytes").add(spilled);
          }
          store.clear_remote_cache();
          rounds[r].clear();
          rounds[r].shrink_to_fit();
        }
      }
      // The stage-4 checkpoint is this rank's records, sorted, in the framed
      // spill-run format (block mode merges its runs while streaming — no
      // resident copy). Keys are globally unique, so the restored sorted
      // order merges into the same global sequence production order would.
      checkpoint_stage(CheckpointStage::kAlignment, [&] {
        const std::string path =
            ckpt->payload_path(CheckpointStage::kAlignment, comm.rank());
        if (B == 1) {
          std::vector<align::AlignmentRecord> sorted = records[rank];
          sort_records(sorted);
          write_alignment_run(path, sorted);
        } else {
          SpillMergeSource merged(spill->rank_runs(comm.rank()));
          write_alignment_run(path, merged);
        }
      });
    } else if (!degraded_me) {
      // Resume past alignment: load this rank's checkpointed records
      // resident and run everything downstream in-memory (no spill set).
      obs::Span io_span = ctx.span("checkpoint:read");
      SpillMergeSource source(std::vector<std::string>{
          ckpt->payload_path(CheckpointStage::kAlignment, comm.rank())});
      align::AlignmentRecord rec;
      while (source.next(rec)) records[rank].push_back(rec);
      al_res[rank].records_kept = records[rank].size();
    }

    // Stage 5 (optional): distributed string graph — classification, edge
    // partition, ghost-edge transitive reduction, unitig/GFA layout. Block
    // mode replays this rank's spilled runs as a merged stream; the graph
    // is invariant to the record regrouping (see run_string_graph_stage).
    if (config.stage5) {
      sgraph::StringGraphConfig scfg;
      scfg.min_overlap_score = config.min_overlap_score;
      scfg.fuzz = config.sgraph_fuzz;
      scfg.overlap_comm = config.overlap_comm;
      scfg.batch_bytes = config.batch_graph_bytes;
      scfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
      obs::Span stage_span = ctx.span("stage:sgraph");
      if (!spill) {
        sg_out[rank] = sgraph::run_string_graph_stage(ctx, store, records[rank], scfg,
                                                      &sg_res[rank]);
      } else {
        SpillMergeSource local_stream(spill->rank_runs(comm.rank()));
        sg_out[rank] = sgraph::run_string_graph_stage(ctx, store, local_stream, scfg,
                                                      &sg_res[rank]);
      }
    }
    mem_res[rank] = store.memory_stats();
  });

  // --- merge per-rank outputs. In-memory mode concatenates and sorts the
  // resident vectors; block mode's merge is the spill k-way merge, streamed
  // on demand via alignment_source().
  PipelineOutput out;
  out.partition = partition;
  out.traces = std::move(traces);
  out.exchange_log = world.exchange_records();
  out.spill = spill;
  if (span_trace) {
    span_trace->finalize();  // an unclosed span would corrupt later pairing
    out.span_trace = span_trace;
  }

  if (!spill) {
    std::size_t total_records = 0;
    for (const auto& v : records) total_records += v.size();
    out.alignments.reserve(total_records);
    for (auto& v : records) {
      out.alignments.insert(out.alignments.end(), v.begin(), v.end());
    }
    sort_records(out.alignments);
  }

  auto& c = out.counters;
  c.max_kmer_count = max_count;
  out.per_rank_pairs_aligned.resize(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const auto rank = static_cast<std::size_t>(r);
    out.per_rank_pairs_aligned[rank] = al_res[rank].pairs_aligned;
    c.kmers_parsed += bloom_res[rank].parsed_instances;
    c.candidate_keys += bloom_res[rank].candidate_keys;
    c.sketch_windows += bloom_res[rank].windows_scanned;
    c.sketch_seeds_kept += bloom_res[rank].parsed_instances;
    c.retained_kmers += ht_res[rank].retained_keys;
    c.purged_keys += ht_res[rank].purged_keys;
    c.overlap_tasks += ov_res[rank].pair_tasks_formed;
    c.read_pairs += ov_res[rank].distinct_pairs;
    c.seeds_after_filter += ov_res[rank].seeds_after_filter;
    c.reads_exchanged += rx_res[rank].reads_requested;
    c.read_bytes_exchanged += rx_res[rank].bytes_received;
    c.pairs_aligned += al_res[rank].pairs_aligned;
    c.alignments_computed += al_res[rank].alignments_computed;
    c.dp_cells += al_res[rank].dp_cells;
    c.alignments_reported += al_res[rank].records_kept;
    c.sw_band_fallbacks += al_res[rank].sw_band_fallbacks;
    c.chain_anchors += al_res[rank].chain_anchors;
    c.chain_dropped_seeds += al_res[rank].chain_dropped_seeds;
    // Stage-5 ownership rules (records where produced, contained reads by
    // owner, edges by the owner of lo) make these plain sums.
    c.sg_contained_reads += sg_res[rank].contained_reads;
    c.sg_internal_records += sg_res[rank].internal_records;
    c.sg_dovetail_edges += sg_res[rank].edges_owned;
    c.sg_edges_removed += sg_res[rank].edges_removed;
    c.sg_edges_surviving += sg_res[rank].edges_surviving;
    // Memory telemetry: peak residency is a per-rank high-water (max), the
    // packed footprint and load/evict activity are capacity sums.
    c.peak_resident_read_bytes =
        std::max(c.peak_resident_read_bytes, mem_res[rank].peak_resident_bytes);
    c.packed_read_bytes += mem_res[rank].packed_bytes;
    c.block_loads += mem_res[rank].block_loads;
    c.block_evictions += mem_res[rank].block_evictions;
  }
  if (spill) {
    c.spill_bytes = spill->spill_bytes();
    c.spill_runs = spill->run_count();
  }
  const comm::CommFaultStats fault_stats = world.comm_fault_stats();
  c.comm_chunk_retries = fault_stats.retries;
  c.comm_chunk_redeliveries = fault_stats.redeliveries;
  c.comm_corrupt_chunks = fault_stats.corrupt_chunks;
  if (config.stage5) {
    // No rank-0 funnel anymore: every rank kept its owned surviving edges
    // and walk fragment; assembling them here is a merge-thread concat +
    // stitch, not a collective.
    out.string_graph = sgraph::finalize_string_graph(std::move(sg_out));
    c.sg_unitigs = out.string_graph.layout.unitigs.size();
    c.sg_components = out.string_graph.layout.components.size();
  }

  // The run registry: fold in the per-rank registries (labeled exchange
  // accounting from the comm sinks, spill activity), then mirror every
  // aggregated pipeline counter so counters.tsv is one deterministic,
  // schema-versioned dump. No wallclock values enter here — measured time
  // lives in the span trace — so the dump is byte-stable run over run.
  {
    obs::Registry& m = out.metrics;
    for (const obs::Registry& rm : rank_metrics) m.merge(rm);
    for (const obs::Registry& rm : rank_wire_metrics) out.wire_metrics.merge(rm);
    const auto put = [&m](const char* name, u64 v) { m.counter(name).add(v); };
    put("ranks", static_cast<u64>(P));
    put("kmers_parsed", c.kmers_parsed);
    put("candidate_keys", c.candidate_keys);
    put("sketch_windows", c.sketch_windows);
    put("sketch_seeds_kept", c.sketch_seeds_kept);
    // Achieved sampling density in parts-per-million (kept / windows); 10^6
    // when dense, ~2/(w+1) * 10^6 under minimizers. Integer so the TSV stays
    // locale-proof and byte-comparable.
    put("sketch_density_ppm", c.sketch_windows == 0
                                  ? 0
                                  : c.sketch_seeds_kept * 1'000'000 / c.sketch_windows);
    put("retained_kmers", c.retained_kmers);
    put("purged_keys", c.purged_keys);
    put("overlap_tasks", c.overlap_tasks);
    put("read_pairs", c.read_pairs);
    put("seeds_after_filter", c.seeds_after_filter);
    put("reads_exchanged", c.reads_exchanged);
    put("read_bytes_exchanged", c.read_bytes_exchanged);
    put("pairs_aligned", c.pairs_aligned);
    put("alignments_computed", c.alignments_computed);
    put("dp_cells", c.dp_cells);
    put("alignments_reported", c.alignments_reported);
    put("sw_band_fallbacks", c.sw_band_fallbacks);
    put("chain_anchors", c.chain_anchors);
    put("chain_dropped_seeds", c.chain_dropped_seeds);
    put("sg_contained_reads", c.sg_contained_reads);
    put("sg_internal_records", c.sg_internal_records);
    put("sg_dovetail_edges", c.sg_dovetail_edges);
    put("sg_edges_removed", c.sg_edges_removed);
    put("sg_edges_surviving", c.sg_edges_surviving);
    put("sg_unitigs", c.sg_unitigs);
    put("sg_components", c.sg_components);
    m.gauge("peak_resident_read_bytes").set_max(c.peak_resident_read_bytes);
    put("packed_read_bytes", c.packed_read_bytes);
    put("block_loads", c.block_loads);
    put("block_evictions", c.block_evictions);
    put("spill_bytes", c.spill_bytes);
    put("spill_runs", c.spill_runs);
    put("comm_chunk_retries", c.comm_chunk_retries);
    put("comm_chunk_redeliveries", c.comm_chunk_redeliveries);
    put("comm_corrupt_chunks", c.comm_corrupt_chunks);
    put("max_kmer_count", c.max_kmer_count);
    if (ckpt) {
      const auto io = ckpt->io_stats();
      put("checkpoint_payloads_written", io.payloads_written);
      put("checkpoint_bytes_written", io.bytes_written);
      put("checkpoint_payloads_read", io.payloads_read);
      put("checkpoint_bytes_read", io.bytes_read);
    }
  }

  // Ground-truth evaluation over the merged (rank-independent) outputs, so
  // the report is as schedule- and rank-count-invariant as the PAF itself.
  if (config.eval) {
    eval::EvalConfig ecfg;
    ecfg.min_true_overlap = config.eval_min_overlap;
    ecfg.len_bin = config.eval_len_bin;
    auto source = out.alignment_source();
    out.eval = eval::evaluate(*truth, *source,
                              config.stage5 ? &out.string_graph.layout : nullptr,
                              ecfg);
    out.eval.degraded_ranks = static_cast<u32>(config.degraded_ranks.size());
    out.eval_ran = true;
  }
  return out;
}

}  // namespace dibella::core
