#include "core/pipeline.hpp"

#include <algorithm>

#include "bella/model.hpp"
#include "core/stage_context.hpp"
#include "io/read_block.hpp"
#include "util/radix_sort.hpp"

namespace dibella::core {

u32 PipelineConfig::resolved_max_kmer_count() const {
  if (max_kmer_count != 0) return max_kmer_count;
  return bella::reliable_max_frequency(assumed_coverage, assumed_error_rate, k);
}

netsim::TimingReport PipelineOutput::evaluate(const netsim::Platform& platform,
                                              const netsim::Topology& topology) const {
  netsim::CostModel model(platform, topology);
  return model.evaluate(traces, exchange_log);
}

std::unique_ptr<align::RecordSource> PipelineOutput::alignment_source() const {
  if (spill) return std::make_unique<SpillMergeSource>(spill->all_runs());
  return std::make_unique<align::VectorRecordSource>(alignments);
}

std::vector<align::AlignmentRecord> PipelineOutput::merged_alignments() const {
  if (!spill) return alignments;
  std::vector<align::AlignmentRecord> merged;
  auto source = alignment_source();
  align::AlignmentRecord rec;
  while (source->next(rec)) merged.push_back(rec);
  return merged;
}

namespace {

/// Sort records into the global output order. Keys are the (rid_a, rid_b)
/// pair, unique across the whole run (each pair has one task owner), so the
/// chained radix passes produce the exact sequence the former comparison
/// sort did.
void sort_records(std::vector<align::AlignmentRecord>& records) {
  util::radix_sort_u64(records,
                       [](const align::AlignmentRecord& r) { return r.rid_b; });
  util::radix_sort_u64(records,
                       [](const align::AlignmentRecord& r) { return r.rid_a; });
}

}  // namespace

PipelineOutput run_pipeline(comm::World& world, const std::vector<io::Read>& reads,
                            const PipelineConfig& config,
                            std::shared_ptr<const io::TruthTable> truth) {
  const int P = world.size();
  const u32 max_count = config.resolved_max_kmer_count();
  const u32 B = config.blocks;
  DIBELLA_CHECK(B >= 1, "config.blocks must be >= 1");
  DIBELLA_CHECK(!config.eval || truth != nullptr,
                "config.eval requires a ground-truth table (see io/truth.hpp)");
  DIBELLA_CHECK(truth == nullptr || truth->size() == reads.size(),
                "truth table and read set disagree on read count");

  std::vector<u64> lens;
  lens.reserve(reads.size());
  for (const auto& r : reads) lens.push_back(r.seq.size());
  io::ReadPartition partition(lens, P);

  // Per-rank result slots (each rank writes only its own index).
  std::vector<netsim::RankTrace> traces(static_cast<std::size_t>(P));
  std::vector<bloom::BloomStageResult> bloom_res(static_cast<std::size_t>(P));
  std::vector<dht::HashTableStageResult> ht_res(static_cast<std::size_t>(P));
  std::vector<overlap::OverlapStageResult> ov_res(static_cast<std::size_t>(P));
  std::vector<align::ReadExchangeResult> rx_res(static_cast<std::size_t>(P));
  std::vector<align::AlignmentStageResult> al_res(static_cast<std::size_t>(P));
  std::vector<std::vector<align::AlignmentRecord>> records(static_cast<std::size_t>(P));
  std::vector<sgraph::StringGraphStageResult> sg_res(static_cast<std::size_t>(P));
  std::vector<sgraph::StringGraphOutput> sg_out(static_cast<std::size_t>(P));
  std::vector<io::ReadStoreMemoryStats> mem_res(static_cast<std::size_t>(P));

  // Block mode spills each round's sorted records instead of keeping them
  // resident; ranks (threads) append runs concurrently.
  std::shared_ptr<AlignmentSpillSet> spill;
  if (B > 1) spill = std::make_shared<AlignmentSpillSet>(config.spill_dir);

  world.clear_exchange_records();
  world.run([&](comm::Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    StageContext ctx{comm, traces[rank]};
    ctx.attach();

    io::BlockConfig block_cfg;
    block_cfg.blocks = B;
    block_cfg.memory_budget_bytes = config.memory_budget_bytes;
    io::ReadStore store(reads, partition, comm.rank(), block_cfg);
    if (truth) store.attach_truth(truth);

    // Stage 1: distributed Bloom filter; initializes candidate keys.
    dht::LocalKmerTable table(1024, max_count + 1);
    bloom::BloomStageConfig bcfg;
    bcfg.k = config.k;
    bcfg.batch_kmers = config.batch_kmers;
    bcfg.bloom_fpr = config.bloom_fpr;
    bcfg.assumed_error_rate = config.assumed_error_rate;
    bcfg.overlap_comm = config.overlap_comm;
    bcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    bloom_res[rank] = bloom::run_bloom_stage(ctx, store, bcfg, table);

    // Stage 2: distributed hash table with occurrence metadata + purge.
    dht::HashTableStageConfig hcfg;
    hcfg.k = config.k;
    hcfg.batch_instances = config.batch_kmers;
    hcfg.min_count = config.min_kmer_count;
    hcfg.max_count = max_count;
    hcfg.overlap_comm = config.overlap_comm;
    hcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    ht_res[rank] = dht::run_hashtable_stage(ctx, store, hcfg, table);

    // Stage 3: overlap detection (Algorithm 1) + task exchange.
    overlap::OverlapStageConfig ocfg;
    ocfg.seed_filter = config.seed_filter;
    ocfg.overlap_comm = config.overlap_comm;
    ocfg.batch_tasks = config.batch_overlap_tasks;
    ocfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    auto tasks = overlap::run_overlap_stage(ctx, table, partition, ocfg, &ov_res[rank]);

    // Stage 4a+4b: read exchange then embarrassingly parallel x-drop
    // alignment. In-memory mode runs them once over all tasks; block mode
    // runs one round per block, and every task joins the round of its
    // *remote* read's block (both-local tasks follow rid_b's block). All
    // tasks needing a given remote gid therefore land in one round, so each
    // remote read is still fetched exactly once, and every rank's server
    // side only unpacks its own round block — the exchange totals match the
    // in-memory path exactly. Every rank runs exactly B rounds (the
    // exchange is collective), and B == 1 degenerates to one round over the
    // consolidated task order, i.e. today's behavior.
    align::ReadExchangeConfig rcfg;
    rcfg.overlap_comm = config.overlap_comm;
    rcfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
    align::AlignmentStageConfig acfg;
    acfg.scoring = config.scoring;
    acfg.xdrop = config.xdrop;
    acfg.k = config.k;
    acfg.min_score = config.min_report_score;
    if (B == 1) {
      rx_res[rank] = align::run_read_exchange(ctx, store, tasks, rcfg);
      records[rank] = align::run_alignment_stage(ctx, store, tasks, acfg, &al_res[rank]);
    } else {
      std::vector<std::vector<overlap::AlignmentTask>> rounds(B);
      for (auto& t : tasks) {
        const u64 round_gid = !store.is_local(t.rid_a) ? t.rid_a : t.rid_b;
        rounds[io::block_of(partition, B, round_gid)].push_back(std::move(t));
      }
      tasks.clear();
      tasks.shrink_to_fit();
      for (u32 r = 0; r < B; ++r) {
        const auto rx = align::run_read_exchange(ctx, store, rounds[r], rcfg);
        rx_res[rank].reads_requested += rx.reads_requested;
        rx_res[rank].reads_served += rx.reads_served;
        rx_res[rank].bytes_received += rx.bytes_received;
        align::AlignmentStageResult al;
        auto round_records = align::run_alignment_stage(ctx, store, rounds[r], acfg, &al);
        al_res[rank].pairs_aligned += al.pairs_aligned;
        al_res[rank].alignments_computed += al.alignments_computed;
        al_res[rank].dp_cells += al.dp_cells;
        al_res[rank].records_kept += al.records_kept;
        al_res[rank].sw_band_fallbacks += al.sw_band_fallbacks;
        sort_records(round_records);
        spill->add_run(comm.rank(), round_records);
        store.clear_remote_cache();
        rounds[r].clear();
        rounds[r].shrink_to_fit();
      }
    }

    // Stage 5 (optional): distributed string graph — classification, edge
    // partition, ghost-edge transitive reduction, unitig/GFA layout. Block
    // mode replays this rank's spilled runs as a merged stream; the graph
    // is invariant to the record regrouping (see run_string_graph_stage).
    if (config.stage5) {
      sgraph::StringGraphConfig scfg;
      scfg.min_overlap_score = config.min_overlap_score;
      scfg.fuzz = config.sgraph_fuzz;
      scfg.overlap_comm = config.overlap_comm;
      scfg.batch_bytes = config.batch_graph_bytes;
      scfg.exchange_chunk_bytes = config.exchange_chunk_bytes;
      if (B == 1) {
        sg_out[rank] = sgraph::run_string_graph_stage(ctx, store, records[rank], scfg,
                                                      &sg_res[rank]);
      } else {
        SpillMergeSource local_stream(spill->rank_runs(comm.rank()));
        sg_out[rank] = sgraph::run_string_graph_stage(ctx, store, local_stream, scfg,
                                                      &sg_res[rank]);
      }
    }
    mem_res[rank] = store.memory_stats();
  });

  // --- merge per-rank outputs. In-memory mode concatenates and sorts the
  // resident vectors; block mode's merge is the spill k-way merge, streamed
  // on demand via alignment_source().
  PipelineOutput out;
  out.partition = partition;
  out.traces = std::move(traces);
  out.exchange_log = world.exchange_records();
  out.spill = spill;

  if (B == 1) {
    std::size_t total_records = 0;
    for (const auto& v : records) total_records += v.size();
    out.alignments.reserve(total_records);
    for (auto& v : records) {
      out.alignments.insert(out.alignments.end(), v.begin(), v.end());
    }
    sort_records(out.alignments);
  }

  auto& c = out.counters;
  c.max_kmer_count = max_count;
  out.per_rank_pairs_aligned.resize(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const auto rank = static_cast<std::size_t>(r);
    out.per_rank_pairs_aligned[rank] = al_res[rank].pairs_aligned;
    c.kmers_parsed += bloom_res[rank].parsed_instances;
    c.candidate_keys += bloom_res[rank].candidate_keys;
    c.retained_kmers += ht_res[rank].retained_keys;
    c.purged_keys += ht_res[rank].purged_keys;
    c.overlap_tasks += ov_res[rank].pair_tasks_formed;
    c.read_pairs += ov_res[rank].distinct_pairs;
    c.seeds_after_filter += ov_res[rank].seeds_after_filter;
    c.reads_exchanged += rx_res[rank].reads_requested;
    c.read_bytes_exchanged += rx_res[rank].bytes_received;
    c.pairs_aligned += al_res[rank].pairs_aligned;
    c.alignments_computed += al_res[rank].alignments_computed;
    c.dp_cells += al_res[rank].dp_cells;
    c.alignments_reported += al_res[rank].records_kept;
    c.sw_band_fallbacks += al_res[rank].sw_band_fallbacks;
    // Stage-5 ownership rules (records where produced, contained reads by
    // owner, edges by the owner of lo) make these plain sums.
    c.sg_contained_reads += sg_res[rank].contained_reads;
    c.sg_internal_records += sg_res[rank].internal_records;
    c.sg_dovetail_edges += sg_res[rank].edges_owned;
    c.sg_edges_removed += sg_res[rank].edges_removed;
    c.sg_edges_surviving += sg_res[rank].edges_surviving;
    // Memory telemetry: peak residency is a per-rank high-water (max), the
    // packed footprint and load/evict activity are capacity sums.
    c.peak_resident_read_bytes =
        std::max(c.peak_resident_read_bytes, mem_res[rank].peak_resident_bytes);
    c.packed_read_bytes += mem_res[rank].packed_bytes;
    c.block_loads += mem_res[rank].block_loads;
    c.block_evictions += mem_res[rank].block_evictions;
  }
  if (spill) {
    c.spill_bytes = spill->spill_bytes();
    c.spill_runs = spill->run_count();
  }
  if (config.stage5) {
    out.string_graph = std::move(sg_out[0]);  // the rank-0 layout funnel
    c.sg_unitigs = out.string_graph.layout.unitigs.size();
    c.sg_components = out.string_graph.layout.components.size();
  }

  // Ground-truth evaluation over the merged (rank-independent) outputs, so
  // the report is as schedule- and rank-count-invariant as the PAF itself.
  if (config.eval) {
    eval::EvalConfig ecfg;
    ecfg.min_true_overlap = config.eval_min_overlap;
    ecfg.len_bin = config.eval_len_bin;
    auto source = out.alignment_source();
    out.eval = eval::evaluate(*truth, *source,
                              config.stage5 ? &out.string_graph.layout : nullptr,
                              ecfg);
    out.eval_ran = true;
  }
  return out;
}

}  // namespace dibella::core
