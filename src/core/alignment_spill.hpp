#pragma once
/// \file alignment_spill.hpp
/// External sort/merge of alignment records — the LAsort/LAmerge analog of
/// the out-of-core pipeline. Each block round radix-sorts its records by
/// (rid_a, rid_b) and spills them as one framed binary run file; the final
/// PAF, stage-5 classification, and eval oracle then consume a k-way merge
/// of the runs instead of a resident vector.
///
/// Run file framing: a magic word and payload length up front, the raw
/// trivially-copyable records, and a trailing CRC32 of the record bytes.
/// SpillMergeSource validates the frame as it streams, so a truncated or
/// bit-flipped run file fails with a clear error naming the file instead of
/// feeding garbage records into the merge. The same format carries the
/// stage-4 checkpoint payloads (core/checkpoint.hpp).
///
/// File lifecycle: one directory per pipeline run (`dibella-spill-<pid>-<seq>`
/// under the configured spill dir or the system temp dir), deterministic run
/// names `align.r<rank>.<run>.bin` inside it, everything removed when the
/// spill set is destroyed. Creating a spill set also reclaims orphaned
/// `dibella-spill-*` directories whose owning process is gone (a crashed or
/// killed run cannot clean up after itself).
///
/// Merge totality: every (rid_a, rid_b) pair is produced by exactly one rank
/// in exactly one block round (the pair's task owner and the remote read's
/// block fix both), so the runs' key sets are disjoint and the merged order
/// is the same total (rid_a, rid_b) order as the in-memory sort.

#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "align/record_stream.hpp"
#include "util/common.hpp"

namespace dibella::core {

/// Magic word opening every spill run / checkpoint record file ("DBSP").
inline constexpr u32 kSpillRunMagic = 0x44425350u;

/// Write `sorted` records to `path` in the framed run format (magic, payload
/// length, records, CRC32). Returns the payload byte count.
u64 write_alignment_run(const std::string& path,
                        const std::vector<align::AlignmentRecord>& sorted);

/// Stream `source` to `path` in the framed run format without materializing
/// the records (the header is patched once the record count is known).
/// Returns the payload byte count.
u64 write_alignment_run(const std::string& path, align::RecordSource& source);

/// Delete `dibella-spill-<pid>-<seq>` directories under `parent_dir` whose
/// owning process no longer exists. Returns the number of directories
/// reclaimed. Best-effort: unreadable directories are skipped.
std::size_t reclaim_orphan_spill_dirs(const std::string& parent_dir);

/// Owns a run directory of sorted alignment-record spill files.
/// add_run is thread-safe (ranks are threads); everything else is intended
/// for the single-threaded merge phase after World::run returns.
class AlignmentSpillSet {
 public:
  /// Create the run directory under `dir_hint` (empty = system temp dir),
  /// reclaiming any orphaned spill directories of dead processes found there.
  explicit AlignmentSpillSet(const std::string& dir_hint = "");
  ~AlignmentSpillSet();

  AlignmentSpillSet(const AlignmentSpillSet&) = delete;
  AlignmentSpillSet& operator=(const AlignmentSpillSet&) = delete;

  /// Spill one run of records already sorted by (rid_a, rid_b). Empty runs
  /// are dropped (no file). Thread-safe. Returns the payload bytes written
  /// (0 for a dropped empty run) — the caller's span/metrics accounting.
  u64 add_run(int rank, const std::vector<align::AlignmentRecord>& sorted);

  /// Paths of rank `rank`'s runs, in spill order (stage-5 input).
  std::vector<std::string> rank_runs(int rank) const;

  /// Paths of every run (global merge input), in (rank, spill order).
  std::vector<std::string> all_runs() const;

  const std::string& dir() const { return dir_; }
  u64 spill_bytes() const;
  u64 run_count() const;

 private:
  struct RunInfo {
    int rank;
    std::string path;
  };
  std::string dir_;
  mutable std::mutex mu_;
  std::vector<RunInfo> runs_;
  std::vector<u32> next_run_index_;  // per rank, for deterministic names
  u64 bytes_ = 0;
};

/// K-way merge of sorted run files by (rid_a, rid_b), buffered reads.
/// Validates each run's frame while streaming: a bad magic word fails at
/// open; a truncated payload or CRC mismatch fails at the point it is
/// detected, naming the file.
class SpillMergeSource final : public align::RecordSource {
 public:
  explicit SpillMergeSource(const std::vector<std::string>& run_paths,
                            std::size_t buffer_records = 4096);
  bool next(align::AlignmentRecord& out) override;

 private:
  struct Run {
    std::ifstream in;
    std::string path;
    std::vector<align::AlignmentRecord> buffer;
    std::size_t pos = 0;
    u64 remaining_bytes = 0;  ///< payload bytes not yet read
    u32 crc = 0;              ///< running CRC32 of payload bytes read so far
    bool eof = false;
    bool refill(std::size_t buffer_records);
    const align::AlignmentRecord& head() const { return buffer[pos]; }
  };
  std::vector<std::unique_ptr<Run>> runs_;
  std::size_t buffer_records_;
};

}  // namespace dibella::core
