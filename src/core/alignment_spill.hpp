#pragma once
/// \file alignment_spill.hpp
/// External sort/merge of alignment records — the LAsort/LAmerge analog of
/// the out-of-core pipeline. Each block round radix-sorts its records by
/// (rid_a, rid_b) and spills them as one raw binary run file; the final PAF,
/// stage-5 classification, and eval oracle then consume a k-way merge of the
/// runs instead of a resident vector.
///
/// File lifecycle: one directory per pipeline run (`dibella-spill-<pid>-<seq>`
/// under the configured spill dir or the system temp dir), deterministic run
/// names `align.r<rank>.<run>.bin` inside it, everything removed when the
/// spill set is destroyed. Records are trivially-copyable structs written
/// and read by the same process, so raw memcpy framing is safe.
///
/// Merge totality: every (rid_a, rid_b) pair is produced by exactly one rank
/// in exactly one block round (the pair's task owner and the remote read's
/// block fix both), so the runs' key sets are disjoint and the merged order
/// is the same total (rid_a, rid_b) order as the in-memory sort.

#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "align/record_stream.hpp"

namespace dibella::core {

/// Owns a run directory of sorted alignment-record spill files.
/// add_run is thread-safe (ranks are threads); everything else is intended
/// for the single-threaded merge phase after World::run returns.
class AlignmentSpillSet {
 public:
  /// Create the run directory under `dir_hint` (empty = system temp dir).
  explicit AlignmentSpillSet(const std::string& dir_hint = "");
  ~AlignmentSpillSet();

  AlignmentSpillSet(const AlignmentSpillSet&) = delete;
  AlignmentSpillSet& operator=(const AlignmentSpillSet&) = delete;

  /// Spill one run of records already sorted by (rid_a, rid_b). Empty runs
  /// are dropped (no file). Thread-safe.
  void add_run(int rank, const std::vector<align::AlignmentRecord>& sorted);

  /// Paths of rank `rank`'s runs, in spill order (stage-5 input).
  std::vector<std::string> rank_runs(int rank) const;

  /// Paths of every run (global merge input), in (rank, spill order).
  std::vector<std::string> all_runs() const;

  const std::string& dir() const { return dir_; }
  u64 spill_bytes() const;
  u64 run_count() const;

 private:
  struct RunInfo {
    int rank;
    std::string path;
  };
  std::string dir_;
  mutable std::mutex mu_;
  std::vector<RunInfo> runs_;
  std::vector<u32> next_run_index_;  // per rank, for deterministic names
  u64 bytes_ = 0;
};

/// K-way merge of sorted run files by (rid_a, rid_b), buffered reads.
class SpillMergeSource final : public align::RecordSource {
 public:
  explicit SpillMergeSource(const std::vector<std::string>& run_paths,
                            std::size_t buffer_records = 4096);
  bool next(align::AlignmentRecord& out) override;

 private:
  struct Run {
    std::ifstream in;
    std::vector<align::AlignmentRecord> buffer;
    std::size_t pos = 0;
    bool eof = false;
    bool refill(std::size_t buffer_records);
    const align::AlignmentRecord& head() const { return buffer[pos]; }
  };
  std::vector<std::unique_ptr<Run>> runs_;
  std::size_t buffer_records_;
};

}  // namespace dibella::core
