#include "align/read_exchange.hpp"

#include <algorithm>
#include <set>

#include "core/kernel_costs.hpp"

namespace dibella::align {

namespace {
/// Wire header for one shipped read.
struct ReadHeaderWire {
  u64 gid = 0;
  u32 length = 0;
};
static_assert(std::is_trivially_copyable_v<ReadHeaderWire>);
}  // namespace

ReadExchangeResult run_read_exchange(core::StageContext& ctx, io::ReadStore& store,
                                     const std::vector<overlap::AlignmentTask>& tasks) {
  auto& comm = ctx.comm;
  comm.set_stage("align");
  const int P = comm.size();
  const auto& partition = store.partition();
  ReadExchangeResult res;

  const auto& costs = core::KernelCosts::get();

  // --- collect distinct remote gids, bucketed by owning rank.
  std::vector<std::vector<u64>> requests(static_cast<std::size_t>(P));
  {
    std::set<u64> needed;
    for (const auto& t : tasks) {
      if (!store.is_local(t.rid_a)) needed.insert(t.rid_a);
      if (!store.is_local(t.rid_b)) needed.insert(t.rid_b);
    }
    res.reads_requested = needed.size();
    for (u64 gid : needed) {
      requests[static_cast<std::size_t>(partition.owner_of(gid))].push_back(gid);
    }
    ctx.trace.add_compute("align:pack",
                          static_cast<double>(tasks.size()) * costs.pair_consolidate,
                          tasks.size() * sizeof(overlap::AlignmentTask));
  }

  // --- request ids travel to owners.
  auto incoming_requests = comm.alltoallv(requests);

  // --- owners serialize the requested reads per requester.
  std::vector<std::vector<ReadHeaderWire>> reply_headers(static_cast<std::size_t>(P));
  std::vector<std::vector<char>> reply_chars(static_cast<std::size_t>(P));
  {
    u64 served_bytes = 0;
    for (int requester = 0; requester < P; ++requester) {
      for (u64 gid : incoming_requests[static_cast<std::size_t>(requester)]) {
        const io::Read& r = store.local_read(gid);
        reply_headers[static_cast<std::size_t>(requester)].push_back(
            ReadHeaderWire{gid, static_cast<u32>(r.seq.size())});
        auto& chars = reply_chars[static_cast<std::size_t>(requester)];
        chars.insert(chars.end(), r.seq.begin(), r.seq.end());
        ++res.reads_served;
        served_bytes += r.seq.size();
      }
    }
    ctx.trace.add_compute("align:pack",
                          static_cast<double>(served_bytes) * costs.per_byte_copy,
                          served_bytes);
  }

  // --- replies: headers then characters (two alltoallvs, as real MPI codes
  // marshal ragged payloads).
  auto incoming_headers = comm.alltoallv(reply_headers);
  auto incoming_chars = comm.alltoallv(reply_chars);

  // --- rebuild and cache the remote reads.
  {
    std::vector<io::Read> fetched;
    for (int owner = 0; owner < P; ++owner) {
      const auto& headers = incoming_headers[static_cast<std::size_t>(owner)];
      const auto& chars = incoming_chars[static_cast<std::size_t>(owner)];
      std::size_t offset = 0;
      for (const auto& h : headers) {
        DIBELLA_CHECK(offset + h.length <= chars.size(),
                      "read exchange: payload shorter than headers describe");
        io::Read r;
        r.gid = h.gid;
        r.name = "remote";
        r.seq.assign(chars.begin() + static_cast<std::ptrdiff_t>(offset),
                     chars.begin() + static_cast<std::ptrdiff_t>(offset + h.length));
        offset += h.length;
        res.bytes_received += h.length;
        fetched.push_back(std::move(r));
      }
      DIBELLA_CHECK(offset == chars.size(),
                    "read exchange: payload longer than headers describe");
    }
    ctx.trace.add_compute("align:cache",
                          static_cast<double>(res.bytes_received) * costs.per_byte_copy,
                          res.bytes_received);
    store.cache_remote_bulk(std::move(fetched));
  }
  return res;
}

}  // namespace dibella::align
