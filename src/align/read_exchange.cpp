#include "align/read_exchange.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "comm/exchanger.hpp"
#include "core/kernel_costs.hpp"

namespace dibella::align {

namespace {
/// Wire header for one shipped read (blocking schedule's header alltoallv).
struct ReadHeaderWire {
  u64 gid = 0;
  u32 length = 0;
};
static_assert(std::is_trivially_copyable_v<ReadHeaderWire>);

/// Serialized reply record size in the overlapped schedule's byte stream:
/// u64 gid + u32 length + the characters (fields are written individually,
/// so no struct padding travels).
constexpr std::size_t kReplyHeaderBytes = sizeof(u64) + sizeof(u32);
}  // namespace

ReadExchangeResult run_read_exchange(core::StageContext& ctx, io::ReadStore& store,
                                     const std::vector<overlap::AlignmentTask>& tasks,
                                     const ReadExchangeConfig& cfg) {
  auto& comm = ctx.comm;
  comm.set_stage("align");
  const int P = comm.size();
  const auto& partition = store.partition();
  ReadExchangeResult res;
  obs::Span fetch_span = ctx.span("align:read_exchange");

  const auto& costs = core::KernelCosts::get();

  // --- collect distinct remote gids, bucketed by owning rank.
  std::vector<std::vector<u64>> requests(static_cast<std::size_t>(P));
  {
    std::set<u64> needed;
    for (const auto& t : tasks) {
      if (!store.is_local(t.rid_a)) needed.insert(t.rid_a);
      if (!store.is_local(t.rid_b)) needed.insert(t.rid_b);
    }
    res.reads_requested = needed.size();
    for (u64 gid : needed) {
      requests[static_cast<std::size_t>(partition.owner_of(gid))].push_back(gid);
    }
    ctx.trace.add_compute("align:pack",
                          static_cast<double>(tasks.size()) * costs.pair_consolidate,
                          tasks.size() * sizeof(overlap::AlignmentTask));
  }

  if (cfg.overlap_comm) {
    comm::Exchanger ex(comm, comm::Exchanger::Config{cfg.exchange_chunk_bytes});

    // --- phase A: request ids travel to owners in bounded batches; each
    // arrived batch is filed per requester while the next is in flight.
    std::vector<std::vector<u64>> incoming_requests(static_cast<std::size_t>(P));
    {
      std::vector<std::size_t> cursors(static_cast<std::size_t>(P), 0);
      comm::run_overlapped_exchange(
          ex,
          [&] { return comm::post_slices(ex, requests, cursors, cfg.batch_request_gids); },
          [&](const comm::RecvBatch& batch) {
            for (int s = 0; s < P; ++s) {
              batch.append_from(s, incoming_requests[static_cast<std::size_t>(s)]);
            }
          });
    }

    // --- phase B: owners stream the requested reads back as
    // (gid, length, chars) records. Batch i+1 is serialized and batch i-1
    // deserialized into the cache while batch i is in flight — the stage's
    // dominant payload (the read strings) never idles the rank.
    std::vector<std::size_t> reply_cursors(static_cast<std::size_t>(P), 0);
    std::vector<io::Read> fetched;
    comm::run_overlapped_exchange(
        ex,
        [&] {
          u64 packed = 0;
          bool remaining = false;
          // The byte budget applies per destination, not per batch: serving
          // requesters round-robin keeps every batch's send/recv volumes
          // balanced across peers, so batching costs no extra modeled
          // bandwidth (sum of per-batch maxima == the single-exchange max).
          for (int requester = 0; requester < P; ++requester) {
            const auto& gids = incoming_requests[static_cast<std::size_t>(requester)];
            auto& cur = reply_cursors[static_cast<std::size_t>(requester)];
            u64 packed_dest = 0;
            while (cur < gids.size() && packed_dest < cfg.batch_reply_bytes) {
              const io::Read& r = store.local_read(gids[cur]);
              u64 gid = gids[cur];
              u32 len = static_cast<u32>(r.seq.size());
              ex.post(requester, &gid, 1);
              ex.post(requester, &len, 1);
              ex.post(requester, r.seq.data(), r.seq.size());
              packed_dest += kReplyHeaderBytes + r.seq.size();
              ++res.reads_served;
              ++cur;
            }
            packed += packed_dest;
            if (cur < gids.size()) remaining = true;
          }
          ctx.trace.add_compute("align:pack",
                                static_cast<double>(packed) * costs.per_byte_copy, packed);
          return remaining;
        },
        [&](const comm::RecvBatch& batch) {
          u64 batch_bytes = 0;
          for (int owner = 0; owner < P; ++owner) {
            const u8* p = batch.src_data(owner);
            u64 left = batch.src_size_bytes(owner);
            while (left > 0) {
              DIBELLA_CHECK(left >= kReplyHeaderBytes,
                            "read exchange: truncated reply record");
              u64 gid = 0;
              u32 len = 0;
              std::memcpy(&gid, p, sizeof(gid));
              std::memcpy(&len, p + sizeof(gid), sizeof(len));
              p += kReplyHeaderBytes;
              left -= kReplyHeaderBytes;
              DIBELLA_CHECK(left >= len, "read exchange: payload shorter than header");
              io::Read r;
              r.gid = gid;
              r.name = "remote";
              r.seq.assign(reinterpret_cast<const char*>(p), len);
              p += len;
              left -= len;
              res.bytes_received += len;
              batch_bytes += len;
              fetched.push_back(std::move(r));
            }
          }
          ctx.trace.add_compute("align:cache",
                                static_cast<double>(batch_bytes) * costs.per_byte_copy,
                                batch_bytes);
        });
    store.cache_remote_bulk(std::move(fetched));
    fetch_span.arg("reads", res.reads_requested);
    fetch_span.arg("bytes", res.bytes_received);
    return res;
  }

  // --- blocking schedule: request ids travel to owners in one alltoallv.
  auto incoming_requests = comm.alltoallv(requests);

  // --- owners serialize the requested reads per requester.
  std::vector<std::vector<ReadHeaderWire>> reply_headers(static_cast<std::size_t>(P));
  std::vector<std::vector<char>> reply_chars(static_cast<std::size_t>(P));
  {
    u64 served_bytes = 0;
    for (int requester = 0; requester < P; ++requester) {
      for (u64 gid : incoming_requests[static_cast<std::size_t>(requester)]) {
        const io::Read& r = store.local_read(gid);
        reply_headers[static_cast<std::size_t>(requester)].push_back(
            ReadHeaderWire{gid, static_cast<u32>(r.seq.size())});
        auto& chars = reply_chars[static_cast<std::size_t>(requester)];
        chars.insert(chars.end(), r.seq.begin(), r.seq.end());
        ++res.reads_served;
        served_bytes += r.seq.size();
      }
    }
    ctx.trace.add_compute("align:pack",
                          static_cast<double>(served_bytes) * costs.per_byte_copy,
                          served_bytes);
  }

  // --- replies: headers then characters (two alltoallvs, as real MPI codes
  // marshal ragged payloads).
  auto incoming_headers = comm.alltoallv(reply_headers);
  auto incoming_chars = comm.alltoallv(reply_chars);

  // --- rebuild and cache the remote reads.
  {
    std::vector<io::Read> fetched;
    for (int owner = 0; owner < P; ++owner) {
      const auto& headers = incoming_headers[static_cast<std::size_t>(owner)];
      const auto& chars = incoming_chars[static_cast<std::size_t>(owner)];
      std::size_t offset = 0;
      for (const auto& h : headers) {
        DIBELLA_CHECK(offset + h.length <= chars.size(),
                      "read exchange: payload shorter than headers describe");
        io::Read r;
        r.gid = h.gid;
        r.name = "remote";
        r.seq.assign(chars.begin() + static_cast<std::ptrdiff_t>(offset),
                     chars.begin() + static_cast<std::ptrdiff_t>(offset + h.length));
        offset += h.length;
        res.bytes_received += h.length;
        fetched.push_back(std::move(r));
      }
      DIBELLA_CHECK(offset == chars.size(),
                    "read exchange: payload longer than headers describe");
    }
    ctx.trace.add_compute("align:cache",
                          static_cast<double>(res.bytes_received) * costs.per_byte_copy,
                          res.bytes_received);
    store.cache_remote_bulk(std::move(fetched));
  }
  fetch_span.arg("reads", res.reads_requested);
  fetch_span.arg("bytes", res.bytes_received);
  return res;
}

}  // namespace dibella::align
