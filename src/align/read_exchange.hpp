#pragma once
/// \file read_exchange.hpp
/// Stage 4a (§4, §9): "Redistribute and replicate reads (the original
/// strings) to match read-pair distribution."
///
/// The owner heuristic guarantees one read of every task is already local;
/// the other may live anywhere. Each rank sends its needed gids to the
/// owning ranks, which reply with the read strings (variable-length payloads
/// are shipped as a header all-to-all plus a character all-to-all, exactly
/// how an MPI code would marshal them). Received reads are cached in the
/// rank's ReadStore, replicating them for the embarrassingly-parallel
/// alignment compute.

#include <vector>

#include "core/stage_context.hpp"
#include "io/read_store.hpp"
#include "overlap/overlapper.hpp"
#include "util/common.hpp"

namespace dibella::align {

struct ReadExchangeResult {
  u64 reads_requested = 0;  ///< distinct remote gids this rank needed
  u64 reads_served = 0;     ///< read strings this rank sent to others
  u64 bytes_received = 0;   ///< sequence bytes received (replication volume)
};

/// Fetch every remote read referenced by `tasks` into `store`'s cache.
/// Collective.
ReadExchangeResult run_read_exchange(core::StageContext& ctx, io::ReadStore& store,
                                     const std::vector<overlap::AlignmentTask>& tasks);

}  // namespace dibella::align
