#pragma once
/// \file read_exchange.hpp
/// Stage 4a (§4, §9): "Redistribute and replicate reads (the original
/// strings) to match read-pair distribution."
///
/// The owner heuristic guarantees one read of every task is already local;
/// the other may live anywhere. Each rank sends its needed gids to the
/// owning ranks, which reply with the read strings. Received reads are
/// cached in the rank's ReadStore, replicating them for the
/// embarrassingly-parallel alignment compute.
///
/// Two schedules, identical results:
///  * blocking — requests travel in one alltoallv; replies in two more
///    (a header all-to-all plus a character all-to-all, exactly how an MPI
///    code marshals ragged payloads);
///  * overlapped (default) — requests and replies travel in bounded batches
///    on the nonblocking comm::Exchanger, with reply serialization packed
///    while the previous batch is in flight and arrived reads deserialized
///    while the next one travels. Replies marshal gid/length/characters
///    into a single byte stream per peer, so the three-phase blocking
///    marshaling collapses into request batches + reply batches.

#include <vector>

#include "core/stage_context.hpp"
#include "io/read_store.hpp"
#include "overlap/overlapper.hpp"
#include "util/common.hpp"

namespace dibella::align {

struct ReadExchangeConfig {
  /// Overlap request/reply batches with serialization (comm::Exchanger)
  /// instead of the three blocking alltoallvs. Identical replication.
  bool overlap_comm = true;
  u64 batch_request_gids = 1u << 16;    ///< request gids per destination per batch
  u64 batch_reply_bytes = 1u << 20;     ///< serialized reply bytes per destination per batch
  u64 exchange_chunk_bytes = 1u << 20;  ///< Exchanger chunk granularity
};

struct ReadExchangeResult {
  u64 reads_requested = 0;  ///< distinct remote gids this rank needed
  u64 reads_served = 0;     ///< read strings this rank sent to others
  u64 bytes_received = 0;   ///< sequence bytes received (replication volume)
};

/// Fetch every remote read referenced by `tasks` into `store`'s cache.
/// Collective.
ReadExchangeResult run_read_exchange(core::StageContext& ctx, io::ReadStore& store,
                                     const std::vector<overlap::AlignmentTask>& tasks,
                                     const ReadExchangeConfig& cfg = ReadExchangeConfig());

}  // namespace dibella::align
