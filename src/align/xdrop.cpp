#include "align/xdrop.hpp"

#include <algorithm>
#include <limits>

namespace dibella::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

/// Above this the dead-cell sentinel arithmetic could collide with the prune
/// threshold; capping keeps behavior identical to the reference kernel for
/// any sequences shorter than ~25 Mbp (|score| < 10^8 always holds there).
constexpr int kMaxXdrop = 100'000'000;

inline void ensure_size(std::vector<int>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

/// Character access for one extension frame: forward (a suffix walked left
/// to right) or reversed (a prefix walked right to left) — the reversed view
/// is what lets the left extension run without materializing reversed
/// copies of both prefixes.
template <bool kReversed>
struct SeqView {
  const char* base = nullptr;
  i64 len = 0;
  char operator[](i64 idx) const {
    return kReversed ? base[len - 1 - idx] : base[idx];
  }
};

/// The antidiagonal x-drop DP of ref::xdrop_extend, restructured to be
/// allocation-free:
///   * the three band buffers (antidiagonals d-2, d-1, d) live in the
///     workspace and rotate by pointer swap;
///   * "trimming" a window to its live cells adjusts [lo, hi] bookkeeping
///     instead of copying the band;
///   * the per-cell bounds-checking lambda is replaced by overlap ranges
///     [*_lo, *_hi] precomputed once per antidiagonal for each parent.
/// Scores, spans, and the `cells` counter are bitwise-identical to the
/// reference kernel (enforced by tests/test_align_differential.cpp).
template <bool kReversed>
ExtendResult xdrop_extend_impl(SeqView<kReversed> a, SeqView<kReversed> b,
                               const Scoring& scoring, int xdrop, Workspace& ws) {
  const i64 n = a.len;
  const i64 m = b.len;
  ExtendResult out;  // the empty extension scores 0 at (0,0)
  if (n == 0 && m == 0) return out;
  xdrop = std::min(xdrop, kMaxXdrop);

  // An antidiagonal of the [0,n] x [0,m] rectangle holds at most
  // min(n, m) + 1 cells, so one sizing check up front covers the whole run.
  const std::size_t band_cap = static_cast<std::size_t>(std::min(n, m) + 1);
  for (auto& v : ws.xband) ensure_size(v, band_cap);
  int* prev2 = ws.xband[0].data();
  int* prev1 = ws.xband[1].data();
  int* cur = ws.xband[2].data();

  // Window [lo, hi] of live i-indices per buffer; `base` is the i-index of
  // element 0 (trimming moves lo/hi but not base). Entering the loop at
  // d = 1, prev1 is the d = 0 row (single live cell (0,0) = 0), prev2 empty.
  i64 p2_lo = 1, p2_hi = 0, p2_base = 0;  // empty window sentinel: lo > hi
  i64 p1_lo = 0, p1_hi = 0, p1_base = 0;
  prev1[0] = 0;

  int best = 0;
  i64 best_i = 0, best_j = 0;
  const int gap = scoring.gap;

  for (i64 d = 1; d <= n + m; ++d) {
    // Parents reach i from: up (i-1 in prev1), left (i in prev1),
    // diag (i-1 in prev2).
    i64 lo = std::min(p1_lo, p2_lo + 1);
    i64 hi = std::max(p1_hi + 1, p2_hi + 1);
    lo = std::max(lo, std::max<i64>(0, d - m));
    hi = std::min(hi, std::min<i64>(n, d));
    if (lo > hi) break;
    // Parent overlap ranges within [lo, hi]; outside them the parent is out
    // of window. (Window bounds are >= 0, so p*_lo + 1 >= 1 already encodes
    // the i >= 1 requirement; j >= 1 means i <= d - 1.)
    const i64 diag_lo = std::max(lo, p2_lo + 1);
    const i64 diag_hi = std::min({hi, p2_hi + 1, d - 1});
    const i64 up_lo = std::max(lo, p1_lo + 1);
    const i64 up_hi = std::min(hi, p1_hi + 1);
    const i64 left_lo = std::max(lo, p1_lo);
    const i64 left_hi = std::min({hi, p1_hi, d - 1});

    i64 live_lo = hi + 1, live_hi = lo - 1;
    // The prune/best/live bookkeeping shared by both cell paths below. A
    // dead parent holds kNegInf; adding a substitution/gap to it keeps s
    // hundreds of millions below any live score, so it never wins a max,
    // never beats `best`, and always fails the prune — exactly the
    // skip-dead-parent behavior of the reference kernel.
    auto finish_cell = [&](i64 i, int s) {
      if (s > best) {
        best = s;
        best_i = i;
        best_j = d - i;
      }
      if (s >= best - xdrop) {  // x-drop prune
        cur[i - lo] = s;
        if (live_lo > hi) live_lo = i;
        live_hi = i;
      } else {
        cur[i - lo] = kNegInf;
      }
    };
    // Cell with per-parent window checks (window edges only).
    auto checked_cell = [&](i64 i) {
      int s = kNegInf;
      if (i >= diag_lo && i <= diag_hi) {
        s = prev2[i - 1 - p2_base] + scoring.substitution(a[i - 1], b[d - i - 1]);
      }
      if (i >= up_lo && i <= up_hi) {
        s = std::max(s, prev1[i - 1 - p1_base] + gap);
      }
      if (i >= left_lo && i <= left_hi) {
        s = std::max(s, prev1[i - p1_base] + gap);
      }
      finish_cell(i, s);
    };
    // Split [lo, hi] into checked edges around the interior where all three
    // parents are in-window, so the bulk of the band runs branch-free.
    const i64 all_lo = std::max({diag_lo, up_lo, left_lo});
    const i64 all_hi = std::min({diag_hi, up_hi, left_hi});
    i64 interior_begin = hi + 1, interior_end = hi + 1;  // empty by default
    if (all_lo <= all_hi) {
      interior_begin = all_lo;      // >= lo: every *_lo is clamped to lo
      interior_end = all_hi + 1;    // <= hi + 1
    }
    const int match = scoring.match, mismatch = scoring.mismatch;
    for (i64 i = lo; i < interior_begin; ++i) checked_cell(i);
    for (i64 i = interior_begin; i < interior_end; ++i) {
      int s = prev2[i - 1 - p2_base] + (a[i - 1] == b[d - i - 1] ? match : mismatch);
      s = std::max(s, prev1[i - 1 - p1_base] + gap);
      s = std::max(s, prev1[i - p1_base] + gap);
      finish_cell(i, s);
    }
    for (i64 i = std::max(interior_end, lo); i <= hi; ++i) checked_cell(i);
    out.cells += static_cast<u64>(hi - lo + 1);
    if (live_lo > live_hi) break;  // antidiagonal fully dead: terminate
    // Rotate: cur becomes prev1 with its window trimmed to the live cells
    // (bookkeeping only), prev1 becomes prev2, old prev2 is recycled.
    int* recycled = prev2;
    prev2 = prev1;
    p2_lo = p1_lo;
    p2_hi = p1_hi;
    p2_base = p1_base;
    prev1 = cur;
    p1_lo = live_lo;
    p1_hi = live_hi;
    p1_base = lo;
    cur = recycled;
  }

  out.score = best;
  out.ext_a = static_cast<u64>(best_i);
  out.ext_b = static_cast<u64>(best_j);
  return out;
}

}  // namespace

ExtendResult xdrop_extend(std::string_view a, std::string_view b,
                          const Scoring& scoring, int xdrop, Workspace& ws) {
  return xdrop_extend_impl(
      SeqView<false>{a.data(), static_cast<i64>(a.size())},
      SeqView<false>{b.data(), static_cast<i64>(b.size())}, scoring, xdrop, ws);
}

ExtendResult xdrop_extend(std::string_view a, std::string_view b,
                          const Scoring& scoring, int xdrop) {
  Workspace ws;
  return xdrop_extend(a, b, scoring, xdrop, ws);
}

SeedAlignment align_from_seed(std::string_view a, std::string_view b, u64 pos_a,
                              u64 pos_b, int k, const Scoring& scoring, int xdrop,
                              Workspace& ws) {
  DIBELLA_CHECK(pos_a + static_cast<u64>(k) <= a.size() &&
                    pos_b + static_cast<u64>(k) <= b.size(),
                "align_from_seed: seed outside sequence bounds");
  SeedAlignment out;

  // Left extension: the reversed prefixes ending at the seed start, walked
  // through the reversed index view — no heap copies.
  ExtendResult left = xdrop_extend_impl(
      SeqView<true>{a.data(), static_cast<i64>(pos_a)},
      SeqView<true>{b.data(), static_cast<i64>(pos_b)}, scoring, xdrop, ws);

  // Right extension: suffixes after the seed.
  const u64 a_tail = pos_a + static_cast<u64>(k);
  const u64 b_tail = pos_b + static_cast<u64>(k);
  ExtendResult right = xdrop_extend_impl(
      SeqView<false>{a.data() + a_tail, static_cast<i64>(a.size() - a_tail)},
      SeqView<false>{b.data() + b_tail, static_cast<i64>(b.size() - b_tail)},
      scoring, xdrop, ws);

  out.score = k * scoring.match + left.score + right.score;
  out.a_begin = pos_a - left.ext_a;
  out.b_begin = pos_b - left.ext_b;
  out.a_end = a_tail + right.ext_a;
  out.b_end = b_tail + right.ext_b;
  out.cells = left.cells + right.cells;
  return out;
}

SeedAlignment align_from_seed(std::string_view a, std::string_view b, u64 pos_a,
                              u64 pos_b, int k, const Scoring& scoring, int xdrop) {
  Workspace ws;
  return align_from_seed(a, b, pos_a, pos_b, k, scoring, xdrop, ws);
}

}  // namespace dibella::align
