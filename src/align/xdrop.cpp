#include "align/xdrop.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

namespace dibella::align {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}

ExtendResult xdrop_extend(std::string_view a, std::string_view b,
                          const Scoring& scoring, int xdrop) {
  const i64 n = static_cast<i64>(a.size());
  const i64 m = static_cast<i64>(b.size());
  ExtendResult out;  // the empty extension scores 0 at (0,0)
  if (n == 0 && m == 0) return out;

  // Antidiagonal DP: S(i,j) over d = i+j. Only the *live window* of each
  // antidiagonal is stored and iterated — a cell can be live only if one of
  // its three parents is, so the candidate window of antidiagonal d is the
  // union of the parents' windows. Work is therefore proportional to the
  // number of live cells (the x-drop band), not to n*m.
  //
  // prev1 = antidiagonal d-1, prev2 = d-2, each with its live i-range
  // [lo, lo+size). Entering the loop at d = 1, prev1 is the d = 0 row
  // (single live cell (0,0) = 0); prev2 is empty.
  std::vector<int> prev2;
  i64 prev2_lo = 1;  // empty window sentinel: lo > hi
  i64 prev2_hi = 0;
  std::vector<int> prev1{0};
  i64 prev1_lo = 0;
  i64 prev1_hi = 0;
  std::vector<int> cur;

  int best = 0;
  i64 best_i = 0, best_j = 0;

  auto cell = [](const std::vector<int>& row, i64 lo, i64 hi, i64 i) -> int {
    if (i < lo || i > hi) return kNegInf;
    return row[static_cast<std::size_t>(i - lo)];
  };

  for (i64 d = 1; d <= n + m; ++d) {
    // Parents reach i from: up (i-1 in prev1), left (i in prev1),
    // diag (i-1 in prev2).
    i64 lo = std::min(prev1_lo, prev2_lo + 1);
    i64 hi = std::max(prev1_hi + 1, prev2_hi + 1);
    lo = std::max(lo, std::max<i64>(0, d - m));
    hi = std::min(hi, std::min<i64>(n, d));
    if (lo > hi) break;
    cur.assign(static_cast<std::size_t>(hi - lo + 1), kNegInf);
    i64 live_lo = hi + 1, live_hi = lo - 1;
    for (i64 i = lo; i <= hi; ++i) {
      i64 j = d - i;
      int s = kNegInf;
      if (i >= 1 && j >= 1) {
        int diag = cell(prev2, prev2_lo, prev2_hi, i - 1);
        if (diag > kNegInf) {
          s = std::max(s, diag + scoring.substitution(a[static_cast<std::size_t>(i - 1)],
                                                      b[static_cast<std::size_t>(j - 1)]));
        }
      }
      if (i >= 1) {
        int up = cell(prev1, prev1_lo, prev1_hi, i - 1);
        if (up > kNegInf) s = std::max(s, up + scoring.gap);
      }
      if (j >= 1) {
        int left = cell(prev1, prev1_lo, prev1_hi, i);
        if (left > kNegInf) s = std::max(s, left + scoring.gap);
      }
      ++out.cells;
      if (s == kNegInf) continue;
      if (s > best) {
        best = s;
        best_i = i;
        best_j = j;
      }
      if (s < best - xdrop) continue;  // x-drop prune
      cur[static_cast<std::size_t>(i - lo)] = s;
      live_lo = std::min(live_lo, i);
      live_hi = std::max(live_hi, i);
    }
    if (live_lo > live_hi) break;  // antidiagonal fully dead: terminate
    // Trim the stored window to the live cells.
    prev2 = std::move(prev1);
    prev2_lo = prev1_lo;
    prev2_hi = prev1_hi;
    prev1.assign(cur.begin() + (live_lo - lo), cur.begin() + (live_hi - lo + 1));
    prev1_lo = live_lo;
    prev1_hi = live_hi;
  }

  out.score = best;
  out.ext_a = static_cast<u64>(best_i);
  out.ext_b = static_cast<u64>(best_j);
  return out;
}

SeedAlignment align_from_seed(std::string_view a, std::string_view b, u64 pos_a,
                              u64 pos_b, int k, const Scoring& scoring, int xdrop) {
  DIBELLA_CHECK(pos_a + static_cast<u64>(k) <= a.size() &&
                    pos_b + static_cast<u64>(k) <= b.size(),
                "align_from_seed: seed outside sequence bounds");
  SeedAlignment out;

  // Left extension: reversed prefixes ending at the seed start.
  std::string ra(a.substr(0, pos_a));
  std::string rb(b.substr(0, pos_b));
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  ExtendResult left = xdrop_extend(ra, rb, scoring, xdrop);

  // Right extension: suffixes after the seed.
  ExtendResult right = xdrop_extend(a.substr(pos_a + static_cast<u64>(k)),
                                    b.substr(pos_b + static_cast<u64>(k)), scoring, xdrop);

  out.score = k * scoring.match + left.score + right.score;
  out.a_begin = pos_a - left.ext_a;
  out.b_begin = pos_b - left.ext_b;
  out.a_end = pos_a + static_cast<u64>(k) + right.ext_a;
  out.b_end = pos_b + static_cast<u64>(k) + right.ext_b;
  out.cells = left.cells + right.cells;
  return out;
}

}  // namespace dibella::align
