#pragma once
/// \file workspace.hpp
/// Reusable scratch arena for the alignment kernels.
///
/// The alignment stage is the pipeline's hottest loop (§9: the largest and
/// most load-imbalanced stage). A rank constructs one Workspace and threads
/// it through run_alignment_stage -> align_from_seed -> xdrop_extend /
/// smith_waterman / banded_smith_waterman; every kernel invocation then
/// borrows buffers from the arena instead of allocating. Buffers only ever
/// grow, so after a warm-up pass over the largest task the steady-state
/// alignment loop performs zero heap allocations per seed
/// (tests/test_align_differential.cpp pins this down with a counting
/// operator new).
///
/// A Workspace is cheap to default-construct; the no-workspace kernel
/// overloads create a throwaway one, so casual callers keep the old API.
/// Not thread-safe: one Workspace per rank/thread.

#include <string>
#include <vector>

#include "util/common.hpp"

namespace dibella::align {

struct Workspace {
  /// X-drop antidiagonal bands: three rotating buffers (d-2, d-1, d). The
  /// kernel trims windows by bookkeeping only, so rotation is pointer swaps.
  std::vector<int> xband[3];

  /// Smith-Waterman DP rows (previous / current).
  std::vector<int> sw_row[2];

  /// Smith-Waterman traceback direction matrix, (n+1) x (m+1) flattened.
  /// Outsized calls release their excess on return (smith_waterman trims
  /// the retained buffer to a 64 MiB high-water mark).
  std::vector<u8> sw_dirs;

  /// Reverse-complement scratch for reverse-orientation pairs (hoisted out
  /// of the alignment stage's per-task context).
  std::string b_rc;

  /// Times smith_waterman exceeded its traceback cell budget and fell back
  /// to the score-only banded kernel (surfaced as a pipeline counter).
  u64 sw_band_fallbacks = 0;
};

}  // namespace dibella::align
