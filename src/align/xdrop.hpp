#pragma once
/// \file xdrop.hpp
/// X-drop seed extension (Zhang, Schwartz, Wagner, Miller 2000) — the
/// pairwise kernel of the alignment stage (§2, §9).
///
/// From a shared seed, the alignment is extended independently to the left
/// and right by a banded antidiagonal dynamic program that abandons any cell
/// whose score falls more than X below the best score seen so far. On
/// divergent sequences the live band dies quickly ("the x-drop algorithm
/// returns much faster when the two sequences are divergent", §9 — the
/// source of alignment-stage load imbalance), on homologous sequences the
/// cost is near-linear in the overlap length.
///
/// The hot-path implementation is allocation-free: band buffers come from a
/// caller-provided align::Workspace, window trimming is bookkeeping (no
/// copies), and the left extension walks the reversed prefixes through an
/// index view instead of materializing reversed strings. It is bitwise-
/// identical (scores, spans, `cells`) to the retained straightforward
/// implementation in align::ref (reference_kernels.hpp); the differential
/// suite in tests/test_align_differential.cpp enforces this.
///
/// The paper calls SeqAn's implementation; this is a from-scratch equivalent
/// property-tested against our exact Smith-Waterman (see tests/test_align.cpp).

#include <string_view>

#include "align/scoring.hpp"
#include "align/workspace.hpp"
#include "util/common.hpp"

namespace dibella::align {

/// Result of extending an alignment from position (0,0) into prefixes of
/// two sequences.
struct ExtendResult {
  int score = 0;    ///< best extension score found (>= 0; empty extension = 0)
  u64 ext_a = 0;    ///< bases of `a` consumed by the best extension
  u64 ext_b = 0;    ///< bases of `b` consumed by the best extension
  u64 cells = 0;    ///< DP cells evaluated (work metric for load-imbalance study)
};

/// Extend an alignment of a[0..) vs b[0..) forward from their starts,
/// returning the best-scoring pair of prefixes under `scoring`, abandoning
/// paths that drop more than `xdrop` below the running best. To extend
/// leftward, pass reversed sequences (or use align_from_seed, which walks
/// the reversed prefixes copy-free). `xdrop` is treated as capped at 10^8;
/// larger values behave identically for any sequences shorter than ~25 Mbp.
ExtendResult xdrop_extend(std::string_view a, std::string_view b,
                          const Scoring& scoring, int xdrop, Workspace& ws);

/// Convenience overload with a throwaway workspace (tests, one-off calls).
ExtendResult xdrop_extend(std::string_view a, std::string_view b,
                          const Scoring& scoring, int xdrop);

/// One seed-anchored pairwise alignment: seed of length k at a[pos_a..],
/// b[pos_b..] (sequences already in the same orientation). Extends left and
/// right with x-drop.
struct SeedAlignment {
  int score = 0;       ///< total score including the seed match
  u64 a_begin = 0, a_end = 0;  ///< half-open aligned span in `a`
  u64 b_begin = 0, b_end = 0;  ///< half-open aligned span in `b`
  u64 cells = 0;       ///< DP work
};

SeedAlignment align_from_seed(std::string_view a, std::string_view b, u64 pos_a,
                              u64 pos_b, int k, const Scoring& scoring, int xdrop,
                              Workspace& ws);

/// Convenience overload with a throwaway workspace (tests, one-off calls).
SeedAlignment align_from_seed(std::string_view a, std::string_view b, u64 pos_a,
                              u64 pos_b, int k, const Scoring& scoring, int xdrop);

}  // namespace dibella::align
