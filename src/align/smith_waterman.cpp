#include "align/smith_waterman.hpp"

#include <algorithm>

namespace dibella::align {

namespace {

inline void ensure_size(std::vector<int>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

/// Retention high-water mark for the reused traceback matrix: a near-budget
/// call may need up to cell_budget (~1 GiB) bytes, but keeping that resident
/// in a long-lived per-rank workspace would pin the memory forever. Calls
/// larger than this retain cap release the excess on return; calls at or
/// below it (the common case) keep the buffer for reuse.
constexpr std::size_t kSwDirsRetainBytes = std::size_t{1} << 26;  // 64 MiB

inline void trim_dirs(Workspace& ws) {
  if (ws.sw_dirs.size() > kSwDirsRetainBytes) {
    ws.sw_dirs.resize(kSwDirsRetainBytes);
    ws.sw_dirs.shrink_to_fit();
  }
}

}  // namespace

LocalAlignment smith_waterman(std::string_view a, std::string_view b,
                              const Scoring& scoring, Workspace& ws,
                              u64 cell_budget) {
  const std::size_t n = a.size(), m = b.size();
  LocalAlignment out;
  if (n == 0 || m == 0) return out;

  const u64 dp_cells = static_cast<u64>(n + 1) * static_cast<u64>(m + 1);
  if (cell_budget != 0 && dp_cells > cell_budget) {
    // The full traceback matrix would be pathologically large; fall back to
    // the score-only banded kernel with the band sized so its work stays
    // within the budget (band columns above and below the diagonal).
    ++ws.sw_band_fallbacks;
    const u64 longest = static_cast<u64>(std::max(n, m));
    const i64 band = static_cast<i64>(std::max<u64>(1, cell_budget / (2 * longest)));
    return banded_smith_waterman(a, b, scoring, band, ws);
  }

  // H[i][j] over (n+1) x (m+1); direction matrix for traceback. The loop
  // writes every dirs cell with i, j >= 1 and the traceback only reads
  // those, so the reused matrix needs no clearing.
  enum Dir : u8 { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };
  ensure_size(ws.sw_row[0], m + 1);
  ensure_size(ws.sw_row[1], m + 1);
  if (ws.sw_dirs.size() < dp_cells) ws.sw_dirs.resize(dp_cells);
  int* prev = ws.sw_row[0].data();
  int* cur = ws.sw_row[1].data();
  u8* dirs = ws.sw_dirs.data();
  std::fill(prev, prev + m + 1, 0);
  cur[0] = 0;

  int best = 0;
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    // The rows live in the caller's workspace, so unlike the reference
    // kernel's fresh allocations the compiler cannot prove the u8 traceback
    // stores don't alias them — a reload of prev[j-1]/cur[j-1] after every
    // dirs store. Carrying both in registers (cur[j-1] is just last
    // iteration's s; prev[j-1] is its up-neighbour load) leaves one row load,
    // one row store, and one dirs store per cell.
    const char ai = a[i - 1];
    u8* dir_row = dirs + i * (m + 1);
    int diag_carry = prev[0];  // prev[j-1]
    int left_carry = 0;        // cur[j-1]; cur[0] == 0
    for (std::size_t j = 1; j <= m; ++j) {
      const int pj = prev[j];
      int diag = diag_carry + scoring.substitution(ai, b[j - 1]);
      int up = pj + scoring.gap;
      int left = left_carry + scoring.gap;
      int s = std::max({0, diag, up, left});
      cur[j] = s;
      diag_carry = pj;
      left_carry = s;
      u8 d = kStop;
      if (s > 0) {
        if (s == diag) {
          d = kDiag;
        } else if (s == up) {
          d = kUp;
        } else {
          d = kLeft;
        }
      }
      dir_row[j] = d;
      if (s > best) {
        best = s;
        best_i = i;
        best_j = j;
      }
    }
    std::swap(prev, cur);
  }
  out.cells = static_cast<u64>(n) * static_cast<u64>(m);

  out.score = best;
  if (best == 0) {
    trim_dirs(ws);
    return out;
  }
  out.a_end = best_i;
  out.b_end = best_j;
  // Traceback to the alignment start.
  std::size_t i = best_i, j = best_j;
  while (i > 0 && j > 0) {
    u8 d = dirs[i * (m + 1) + j];
    if (d == kDiag) {
      --i;
      --j;
    } else if (d == kUp) {
      --i;
    } else if (d == kLeft) {
      --j;
    } else {
      break;
    }
  }
  out.a_begin = i;
  out.b_begin = j;
  trim_dirs(ws);
  return out;
}

LocalAlignment smith_waterman(std::string_view a, std::string_view b,
                              const Scoring& scoring) {
  Workspace ws;
  return smith_waterman(a, b, scoring, ws);
}

LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     const Scoring& scoring, i64 band,
                                     Workspace& ws) {
  const i64 n = static_cast<i64>(a.size()), m = static_cast<i64>(b.size());
  LocalAlignment out;
  if (n == 0 || m == 0) return out;
  DIBELLA_CHECK(band >= 0, "band must be non-negative");

  // Row-wise DP restricted to |i - j| <= band. Out-of-band neighbours
  // contribute as a fresh local-alignment start (value 0), which keeps every
  // cell a valid local alignment score while bounding the work to
  // O(n * band). Index 0 of both rows is never written and stays 0; both
  // rows start zero-filled so every in-band read of an unwritten cell sees
  // the out-of-band value 0.
  auto lo_of = [&](i64 i) { return std::max<i64>(1, i - band); };
  auto hi_of = [&](i64 i) { return std::min<i64>(m, i + band); };

  const std::size_t row_len = static_cast<std::size_t>(m + 1);
  ensure_size(ws.sw_row[0], row_len);
  ensure_size(ws.sw_row[1], row_len);
  int* prev = ws.sw_row[0].data();
  int* cur = ws.sw_row[1].data();
  std::fill(prev, prev + row_len, 0);
  std::fill(cur, cur + row_len, 0);

  int best = 0;
  for (i64 i = 1; i <= n; ++i) {
    i64 lo = lo_of(i), hi = hi_of(i);
    if (lo > hi) break;
    for (i64 j = lo; j <= hi; ++j) {
      // Diagonal neighbour (i-1, j-1): in the previous row's band iff
      // j-1 >= (i-1)-band, which j >= lo guarantees; treat the j-1 == 0
      // boundary as the zero column.
      int diag = prev[static_cast<std::size_t>(j - 1)];
      int s = diag + scoring.substitution(a[static_cast<std::size_t>(i - 1)],
                                          b[static_cast<std::size_t>(j - 1)]);
      // Up neighbour (i-1, j): in band iff j <= (i-1)+band.
      if (j < i + band) s = std::max(s, prev[static_cast<std::size_t>(j)] + scoring.gap);
      // Left neighbour (i, j-1): in this row's band iff j-1 >= lo (or the
      // zero column).
      if (j - 1 >= lo || j - 1 == 0) {
        s = std::max(s, cur[static_cast<std::size_t>(j - 1)] + scoring.gap);
      }
      s = std::max(s, 0);
      cur[static_cast<std::size_t>(j)] = s;
      ++out.cells;
      if (s > best) {
        best = s;
        out.a_end = static_cast<u64>(i);
        out.b_end = static_cast<u64>(j);
      }
    }
    // Clear the one stale cell the next row can read at its band edge.
    if (hi + 1 <= m) cur[static_cast<std::size_t>(hi + 1)] = 0;
    std::swap(prev, cur);
  }
  out.score = best;
  return out;
}

LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     const Scoring& scoring, i64 band) {
  Workspace ws;
  return banded_smith_waterman(a, b, scoring, band, ws);
}

}  // namespace dibella::align
