#pragma once
/// \file scoring.hpp
/// Alignment scoring scheme: a simple linear scheme (match reward, mismatch
/// and gap penalties) as in BELLA/diBELLA.
///
/// The defaults matter for x-drop termination: penalties must be steep
/// enough that the expected extension score on *unrelated* DNA drifts
/// downward (so divergent pairs terminate quickly, §9) while two noisy but
/// homologous long reads (~75% pairwise identity at 15% error each) still
/// drift upward. match +1 / mismatch -2 / gap -2 satisfies both; the classic
/// +1/-1/-1 does NOT (random DNA then has positive expected extension score
/// and x-drop explores the full quadratic table).

namespace dibella::align {

struct Scoring {
  int match = 1;
  int mismatch = -2;
  int gap = -2;

  int substitution(char x, char y) const { return x == y ? match : mismatch; }
};

}  // namespace dibella::align
