#include "align/reference_kernels.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

namespace dibella::align::ref {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}

ExtendResult xdrop_extend(std::string_view a, std::string_view b,
                          const Scoring& scoring, int xdrop) {
  const i64 n = static_cast<i64>(a.size());
  const i64 m = static_cast<i64>(b.size());
  ExtendResult out;  // the empty extension scores 0 at (0,0)
  if (n == 0 && m == 0) return out;

  // Antidiagonal DP: S(i,j) over d = i+j. Only the *live window* of each
  // antidiagonal is stored and iterated — a cell can be live only if one of
  // its three parents is, so the candidate window of antidiagonal d is the
  // union of the parents' windows. Work is therefore proportional to the
  // number of live cells (the x-drop band), not to n*m.
  //
  // prev1 = antidiagonal d-1, prev2 = d-2, each with its live i-range
  // [lo, lo+size). Entering the loop at d = 1, prev1 is the d = 0 row
  // (single live cell (0,0) = 0); prev2 is empty.
  std::vector<int> prev2;
  i64 prev2_lo = 1;  // empty window sentinel: lo > hi
  i64 prev2_hi = 0;
  std::vector<int> prev1{0};
  i64 prev1_lo = 0;
  i64 prev1_hi = 0;
  std::vector<int> cur;

  int best = 0;
  i64 best_i = 0, best_j = 0;

  auto cell = [](const std::vector<int>& row, i64 lo, i64 hi, i64 i) -> int {
    if (i < lo || i > hi) return kNegInf;
    return row[static_cast<std::size_t>(i - lo)];
  };

  for (i64 d = 1; d <= n + m; ++d) {
    // Parents reach i from: up (i-1 in prev1), left (i in prev1),
    // diag (i-1 in prev2).
    i64 lo = std::min(prev1_lo, prev2_lo + 1);
    i64 hi = std::max(prev1_hi + 1, prev2_hi + 1);
    lo = std::max(lo, std::max<i64>(0, d - m));
    hi = std::min(hi, std::min<i64>(n, d));
    if (lo > hi) break;
    cur.assign(static_cast<std::size_t>(hi - lo + 1), kNegInf);
    i64 live_lo = hi + 1, live_hi = lo - 1;
    for (i64 i = lo; i <= hi; ++i) {
      i64 j = d - i;
      int s = kNegInf;
      if (i >= 1 && j >= 1) {
        int diag = cell(prev2, prev2_lo, prev2_hi, i - 1);
        if (diag > kNegInf) {
          s = std::max(s, diag + scoring.substitution(a[static_cast<std::size_t>(i - 1)],
                                                      b[static_cast<std::size_t>(j - 1)]));
        }
      }
      if (i >= 1) {
        int up = cell(prev1, prev1_lo, prev1_hi, i - 1);
        if (up > kNegInf) s = std::max(s, up + scoring.gap);
      }
      if (j >= 1) {
        int left = cell(prev1, prev1_lo, prev1_hi, i);
        if (left > kNegInf) s = std::max(s, left + scoring.gap);
      }
      ++out.cells;
      if (s == kNegInf) continue;
      if (s > best) {
        best = s;
        best_i = i;
        best_j = j;
      }
      if (s < best - xdrop) continue;  // x-drop prune
      cur[static_cast<std::size_t>(i - lo)] = s;
      live_lo = std::min(live_lo, i);
      live_hi = std::max(live_hi, i);
    }
    if (live_lo > live_hi) break;  // antidiagonal fully dead: terminate
    // Trim the stored window to the live cells.
    prev2 = std::move(prev1);
    prev2_lo = prev1_lo;
    prev2_hi = prev1_hi;
    prev1.assign(cur.begin() + (live_lo - lo), cur.begin() + (live_hi - lo + 1));
    prev1_lo = live_lo;
    prev1_hi = live_hi;
  }

  out.score = best;
  out.ext_a = static_cast<u64>(best_i);
  out.ext_b = static_cast<u64>(best_j);
  return out;
}

SeedAlignment align_from_seed(std::string_view a, std::string_view b, u64 pos_a,
                              u64 pos_b, int k, const Scoring& scoring, int xdrop) {
  DIBELLA_CHECK(pos_a + static_cast<u64>(k) <= a.size() &&
                    pos_b + static_cast<u64>(k) <= b.size(),
                "align_from_seed: seed outside sequence bounds");
  SeedAlignment out;

  // Left extension: reversed prefixes ending at the seed start.
  std::string ra(a.substr(0, pos_a));
  std::string rb(b.substr(0, pos_b));
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  ExtendResult left = ref::xdrop_extend(ra, rb, scoring, xdrop);

  // Right extension: suffixes after the seed.
  ExtendResult right = ref::xdrop_extend(a.substr(pos_a + static_cast<u64>(k)),
                                         b.substr(pos_b + static_cast<u64>(k)), scoring, xdrop);

  out.score = k * scoring.match + left.score + right.score;
  out.a_begin = pos_a - left.ext_a;
  out.b_begin = pos_b - left.ext_b;
  out.a_end = pos_a + static_cast<u64>(k) + right.ext_a;
  out.b_end = pos_b + static_cast<u64>(k) + right.ext_b;
  out.cells = left.cells + right.cells;
  return out;
}

LocalAlignment smith_waterman(std::string_view a, std::string_view b,
                              const Scoring& scoring) {
  const std::size_t n = a.size(), m = b.size();
  LocalAlignment out;
  if (n == 0 || m == 0) return out;

  // H[i][j] over (n+1) x (m+1); direction matrix for traceback.
  enum Dir : u8 { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  std::vector<u8> dirs((n + 1) * (m + 1), kStop);

  int best = 0;
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      int diag = prev[j - 1] + scoring.substitution(a[i - 1], b[j - 1]);
      int up = prev[j] + scoring.gap;
      int left = cur[j - 1] + scoring.gap;
      int s = std::max({0, diag, up, left});
      cur[j] = s;
      ++out.cells;
      u8 d = kStop;
      if (s > 0) {
        if (s == diag) {
          d = kDiag;
        } else if (s == up) {
          d = kUp;
        } else {
          d = kLeft;
        }
      }
      dirs[i * (m + 1) + j] = d;
      if (s > best) {
        best = s;
        best_i = i;
        best_j = j;
      }
    }
    std::swap(prev, cur);
  }

  out.score = best;
  if (best == 0) return out;
  out.a_end = best_i;
  out.b_end = best_j;
  // Traceback to the alignment start.
  std::size_t i = best_i, j = best_j;
  while (i > 0 && j > 0) {
    u8 d = dirs[i * (m + 1) + j];
    if (d == kDiag) {
      --i;
      --j;
    } else if (d == kUp) {
      --i;
    } else if (d == kLeft) {
      --j;
    } else {
      break;
    }
  }
  out.a_begin = i;
  out.b_begin = j;
  return out;
}

LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     const Scoring& scoring, i64 band) {
  const i64 n = static_cast<i64>(a.size()), m = static_cast<i64>(b.size());
  LocalAlignment out;
  if (n == 0 || m == 0) return out;
  DIBELLA_CHECK(band >= 0, "band must be non-negative");

  // Row-wise DP restricted to |i - j| <= band. Out-of-band neighbours
  // contribute as a fresh local-alignment start (value 0), which keeps every
  // cell a valid local alignment score while bounding the work to
  // O(n * band). Index 0 of both rows is never written and stays 0.
  auto lo_of = [&](i64 i) { return std::max<i64>(1, i - band); };
  auto hi_of = [&](i64 i) { return std::min<i64>(m, i + band); };

  std::vector<int> prev(static_cast<std::size_t>(m + 1), 0),
      cur(static_cast<std::size_t>(m + 1), 0);
  int best = 0;
  for (i64 i = 1; i <= n; ++i) {
    i64 lo = lo_of(i), hi = hi_of(i);
    if (lo > hi) break;
    for (i64 j = lo; j <= hi; ++j) {
      // Diagonal neighbour (i-1, j-1): in the previous row's band iff
      // j-1 >= (i-1)-band, which j >= lo guarantees; treat the j-1 == 0
      // boundary as the zero column.
      int diag = prev[static_cast<std::size_t>(j - 1)];
      int s = diag + scoring.substitution(a[static_cast<std::size_t>(i - 1)],
                                          b[static_cast<std::size_t>(j - 1)]);
      // Up neighbour (i-1, j): in band iff j <= (i-1)+band.
      if (j < i + band) s = std::max(s, prev[static_cast<std::size_t>(j)] + scoring.gap);
      // Left neighbour (i, j-1): in this row's band iff j-1 >= lo (or the
      // zero column).
      if (j - 1 >= lo || j - 1 == 0) {
        s = std::max(s, cur[static_cast<std::size_t>(j - 1)] + scoring.gap);
      }
      s = std::max(s, 0);
      cur[static_cast<std::size_t>(j)] = s;
      ++out.cells;
      if (s > best) {
        best = s;
        out.a_end = static_cast<u64>(i);
        out.b_end = static_cast<u64>(j);
      }
    }
    // Clear the one stale cell the next row can read at its band edge.
    if (hi + 1 <= m) cur[static_cast<std::size_t>(hi + 1)] = 0;
    std::swap(prev, cur);
  }
  out.score = best;
  return out;
}

}  // namespace dibella::align::ref
