#pragma once
/// \file record_stream.hpp
/// Pull-based streams of alignment records. Stage 5, the eval oracle, and
/// the PAF writer consume records through this interface so they work the
/// same whether the records sit in PipelineOutput's in-memory vector
/// (--blocks=1) or stream out of the external-sort spill files (k-way
/// merge, --blocks>1) without ever being resident at once.

#include <vector>

#include "align/alignment_stage.hpp"

namespace dibella::align {

/// A forward-only stream of AlignmentRecords in (rid_a, rid_b) order.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  /// Fill `out` with the next record; false when the stream is exhausted.
  virtual bool next(AlignmentRecord& out) = 0;
};

/// Stream over a resident vector (the in-memory path and the test seam).
class VectorRecordSource final : public RecordSource {
 public:
  explicit VectorRecordSource(const std::vector<AlignmentRecord>& records)
      : records_(&records) {}

  bool next(AlignmentRecord& out) override {
    if (index_ >= records_->size()) return false;
    out = (*records_)[index_++];
    return true;
  }

 private:
  const std::vector<AlignmentRecord>* records_;
  std::size_t index_ = 0;
};

}  // namespace dibella::align
