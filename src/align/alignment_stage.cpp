#include "align/alignment_stage.hpp"

#include "align/chain.hpp"
#include "align/xdrop.hpp"
#include "core/kernel_costs.hpp"
#include "kmer/dna.hpp"
#include "kmer/kmer.hpp"

namespace dibella::align {

std::vector<AlignmentRecord> run_alignment_stage(
    core::StageContext& ctx, const io::ReadStore& store,
    const std::vector<overlap::AlignmentTask>& tasks, const AlignmentStageConfig& cfg,
    AlignmentStageResult* result) {
  ctx.comm.set_stage("align");
  const auto& costs = core::KernelCosts::get();
  AlignmentStageResult res;
  std::vector<AlignmentRecord> records;
  records.reserve(tasks.size());

  // One workspace for the whole stage: DP bands, SW rows/traceback, and the
  // reverse-complement buffer are reused across every task and seed, so the
  // steady-state loop performs zero heap allocations per seed.
  Workspace ws;

  ChainParams chain_params;
  chain_params.k = cfg.k;

  obs::Span extend_span = ctx.span("align:extend");
  u64 touched_bytes = 0;
  u64 revcomp_bytes = 0;
  for (const auto& task : tasks) {
    const std::string& a = store.get(task.rid_a).seq;
    const std::string& b = store.get(task.rid_b).seq;
    touched_bytes += a.size() + b.size();
    ++res.pairs_aligned;

    // ws.b_rc holds the reverse complement of *this* task's b once a
    // reverse-orientation seed appears; the flag (not the buffer) tracks
    // per-task laziness so the buffer's capacity carries across tasks.
    bool have_rc = false;

    AlignmentRecord best;
    best.rid_a = task.rid_a;
    best.rid_b = task.rid_b;
    bool have_best = false;

    // Chaining collapses the pair's seed list to the best chain's
    // representative anchor — one extension per pair. When no seed is
    // chainable (all corrupt) the per-seed loop below runs and skips them
    // the same way it always has.
    overlap::SeedPair chain_anchor;
    const overlap::SeedPair* seeds = task.seeds.data();
    std::size_t n_seeds = task.seeds.size();
    if (cfg.chain && n_seeds > 1) {
      ChainResult chain = chain_seeds(task.seeds, a.size(), b.size(), chain_params,
                                      &res.chain_dropped_seeds);
      if (chain.found) {
        chain_anchor = chain.anchor;
        seeds = &chain_anchor;
        n_seeds = 1;
        ++res.chain_anchors;
      }
    }

    for (std::size_t si = 0; si < n_seeds; ++si) {
      const overlap::SeedPair& seed = seeds[si];
      const int k = cfg.k;
      u64 pos_a = seed.pos_a;
      u64 pos_b;
      std::string_view bseq;
      if (seed.same_orientation) {
        bseq = b;
        pos_b = seed.pos_b;
      } else {
        if (!have_rc) {
          kmer::reverse_complement_into(b, ws.b_rc);
          have_rc = true;
          revcomp_bytes += b.size();
        }
        bseq = ws.b_rc;
        // A window at pos p in b's forward frame starts at len-k-p in the RC.
        pos_b = b.size() - static_cast<u64>(k) - seed.pos_b;
      }
      if (pos_a + static_cast<u64>(k) > a.size() ||
          pos_b + static_cast<u64>(k) > bseq.size()) {
        continue;  // defensive: corrupt seed
      }
      SeedAlignment sa =
          align_from_seed(a, bseq, pos_a, pos_b, k, cfg.scoring, cfg.xdrop, ws);
      ++res.alignments_computed;
      res.dp_cells += sa.cells;

      if (!have_best || sa.score > best.score) {
        have_best = true;
        best.score = sa.score;
        best.same_orientation = seed.same_orientation;
        best.a_begin = static_cast<u32>(sa.a_begin);
        best.a_end = static_cast<u32>(sa.a_end);
        if (seed.same_orientation) {
          best.b_begin = static_cast<u32>(sa.b_begin);
          best.b_end = static_cast<u32>(sa.b_end);
        } else {
          // Convert RC-frame span back to b's forward frame.
          best.b_begin = static_cast<u32>(b.size() - sa.b_end);
          best.b_end = static_cast<u32>(b.size() - sa.b_begin);
        }
      }
    }
    best.seeds_explored = static_cast<u32>(n_seeds);
    if (have_best && best.score >= cfg.min_score) {
      records.push_back(best);
      ++res.records_kept;
    }
  }
  extend_span.arg("pairs", res.pairs_aligned);
  extend_span.arg("cells", res.dp_cells);
  res.sw_band_fallbacks = ws.sw_band_fallbacks;
  // Work-based compute accounting: DP cells dominate; reverse-complement
  // construction and read access are byte-copy-bounded. Exact per-rank unit
  // counts preserve the data-dependent load imbalance the paper studies.
  ctx.trace.add_compute(
      "align:compute",
      static_cast<double>(res.dp_cells) * costs.xdrop_per_cell +
          static_cast<double>(revcomp_bytes + touched_bytes) * costs.per_byte_copy,
      touched_bytes);

  if (result) *result = res;
  return records;
}

}  // namespace dibella::align
