#pragma once
/// \file reference_kernels.hpp
/// Retained reference implementations of the alignment kernels.
///
/// These are the original straightforward implementations of x-drop
/// extension, seed-anchored alignment, and (banded) Smith-Waterman, kept
/// verbatim when the hot-path kernels in xdrop.cpp / smith_waterman.cpp were
/// rebuilt around reusable workspaces. They are the correctness oracles: the
/// optimized kernels must produce bitwise-identical scores, spans, and
/// `cells` counters (see tests/test_align_differential.cpp), and the
/// wall-clock benchmark (bench/bench_kernel_wallclock.cpp) reports speedup
/// relative to them.
///
/// Do not optimize these. Clarity over speed is the point.

#include <string_view>

#include "align/smith_waterman.hpp"
#include "align/xdrop.hpp"

namespace dibella::align::ref {

/// Original x-drop extension: allocates three std::vector<int> per call and
/// re-assigns a fresh window per antidiagonal.
ExtendResult xdrop_extend(std::string_view a, std::string_view b,
                          const Scoring& scoring, int xdrop);

/// Original seed-anchored alignment: materializes reversed prefix copies of
/// both sequences for the left extension.
SeedAlignment align_from_seed(std::string_view a, std::string_view b, u64 pos_a,
                              u64 pos_b, int k, const Scoring& scoring, int xdrop);

/// Original full Smith-Waterman with traceback; unconditionally allocates
/// the (n+1)x(m+1) direction matrix.
LocalAlignment smith_waterman(std::string_view a, std::string_view b,
                              const Scoring& scoring);

/// Original banded Smith-Waterman (allocates two rows per call).
LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     const Scoring& scoring, i64 band);

}  // namespace dibella::align::ref
