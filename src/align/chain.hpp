#pragma once
/// \file chain.hpp
/// Colinear seed chaining for stage 4 — minimap2's anchor-chaining step
/// scaled to this pipeline's per-pair seed lists. Instead of extending an
/// alignment from every surviving seed of a read pair and keeping the best,
/// the seeds are sorted by position, joined by a gap-cost DP into chains of
/// mutually consistent (colinear, bounded-gap, bounded-drift) anchors, and
/// the best chain nominates one representative seed — so stage 4 runs one
/// x-drop extension per pair instead of one per seed.
///
/// Chaining runs where the partner read's length is known (after the read
/// exchange): reverse-orientation seeds must first be mapped into b's
/// reverse-complement frame, since colinearity only holds there. Everything
/// is integer arithmetic with fixed tie-breaks, so the chosen anchor — and
/// therefore the output — is a pure function of the seed set.

#include <vector>

#include "overlap/seed_filter.hpp"
#include "util/common.hpp"

namespace dibella::align {

struct ChainParams {
  int k = 17;          ///< seed length (anchor span and max per-link gain)
  u32 max_gap = 5000;  ///< max bases between adjacent anchors, either read
  u32 max_drift = 500; ///< max diagonal drift |dx - dy| between neighbours
  /// DP lookback bound: each anchor considers at most this many sorted
  /// predecessors (minimap2's h). Seed lists here are post-filter and small;
  /// the bound only guards pathological repeat pairs.
  u32 max_lookback = 64;
};

struct ChainResult {
  bool found = false;
  /// Representative seed of the best chain (its middle anchor), in the
  /// original wire coordinates — pos_b in b's forward frame.
  overlap::SeedPair anchor;
  i64 score = 0;       ///< best chain's DP score
  u32 anchors = 0;     ///< anchors in the best chain
  u32 span_a = 0;      ///< a-extent of the chain (first to last seed start + k)
  u32 span_b = 0;      ///< b-extent in the chaining frame
};

/// Chain a consolidated pair's seeds. `b_len` is the partner read's length
/// (needed to transform reverse-orientation seeds). Seeds whose window falls
/// outside the read (corrupt) are skipped. Returns found = false only when
/// no seed is chainable at all. `dropped` (optional) accumulates the number
/// of seeds the pair had beyond the one emitted anchor.
ChainResult chain_seeds(const std::vector<overlap::SeedPair>& seeds, u64 a_len,
                        u64 b_len, const ChainParams& params, u64* dropped = nullptr);

}  // namespace dibella::align
