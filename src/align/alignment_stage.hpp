#pragma once
/// \file alignment_stage.hpp
/// Pipeline stage 4 (§9): x-drop pairwise alignment of every task.
///
/// After the read exchange the computation is embarrassingly parallel: each
/// rank aligns its tasks locally, extending from each surviving seed and
/// keeping the pair's best alignment. The per-rank wall time is the load-
/// imbalance metric of Fig 8 — near-perfect balance in task *counts*, but
/// imperfect in *time* because read lengths differ and x-drop returns early
/// on divergent pairs.

#include <vector>

#include "align/scoring.hpp"
#include "core/stage_context.hpp"
#include "io/read_store.hpp"
#include "overlap/overlapper.hpp"
#include "util/common.hpp"

namespace dibella::align {

/// Final product of the pipeline: one aligned overlap.
struct AlignmentRecord {
  u64 rid_a = 0;
  u64 rid_b = 0;
  u8 same_orientation = 1;  ///< 0: b was reverse-complemented for alignment
  i32 score = 0;
  /// Aligned half-open spans. b coordinates refer to b's forward frame even
  /// for reverse-complement alignments (converted back before reporting).
  u32 a_begin = 0, a_end = 0;
  u32 b_begin = 0, b_end = 0;
  u32 seeds_explored = 0;
};
static_assert(std::is_trivially_copyable_v<AlignmentRecord>);

struct AlignmentStageConfig {
  Scoring scoring;
  int xdrop = 25;
  /// Seed (k-mer) length the overlap stage used — needed to anchor
  /// extensions and to map reverse-complement seed coordinates.
  int k = 17;
  /// Report only alignments with score >= min_score (0 keeps everything).
  int min_score = 0;
  /// Colinear-chain each multi-seed pair (align/chain.hpp) and extend only
  /// the best chain's representative anchor, instead of extending every
  /// seed and keeping the best score. Off preserves the exhaustive per-seed
  /// sweep; the pipeline turns this on by default.
  bool chain = false;
};

struct AlignmentStageResult {
  u64 pairs_aligned = 0;       ///< tasks processed
  u64 alignments_computed = 0; ///< seed extensions performed (Fig 7's unit)
  u64 dp_cells = 0;            ///< total DP cells (the real work metric)
  u64 records_kept = 0;        ///< alignments above min_score
  /// Times smith_waterman hit its traceback cell budget and fell back to
  /// the banded score-only kernel (from the stage workspace; 0 unless an
  /// exact-SW path runs through it).
  u64 sw_band_fallbacks = 0;
  u64 chain_anchors = 0;        ///< pairs extended from a chain anchor
  u64 chain_dropped_seeds = 0;  ///< seeds subsumed by their pair's chain
};

/// Align every task (reads must already be resident via run_read_exchange).
/// Purely local — no communication.
std::vector<AlignmentRecord> run_alignment_stage(
    core::StageContext& ctx, const io::ReadStore& store,
    const std::vector<overlap::AlignmentTask>& tasks, const AlignmentStageConfig& cfg,
    AlignmentStageResult* result = nullptr);

}  // namespace dibella::align
