#pragma once
/// \file smith_waterman.hpp
/// Exact pairwise alignment kernels: full Smith-Waterman local alignment
/// (O(nm), the paper's §2 baseline formulation) and a banded variant.
/// These are the correctness oracles for the x-drop kernel and the
/// comparison points for the computational-cost discussion in §2-3.
///
/// The hot-path implementations borrow their DP rows and traceback matrix
/// from an align::Workspace (zero heap allocations after warm-up) and are
/// bitwise-identical to the retained originals in align::ref
/// (reference_kernels.hpp). The full kernel additionally guards against a
/// pathological n*m traceback matrix: above `cell_budget` cells it falls
/// back to the score-only banded kernel (sized to stay within the budget)
/// and counts the event in Workspace::sw_band_fallbacks, which the pipeline
/// surfaces in counters.tsv.

#include <string_view>

#include "align/scoring.hpp"
#include "align/workspace.hpp"
#include "util/common.hpp"

namespace dibella::align {

struct LocalAlignment {
  int score = 0;
  /// Half-open aligned spans; all zero when the best local score is 0 or
  /// when the banded fallback (no traceback) produced the result.
  u64 a_begin = 0, a_end = 0;
  u64 b_begin = 0, b_end = 0;
  u64 cells = 0;  ///< DP cells evaluated
};

/// Default traceback cell budget: 1 GiB of direction bytes. Two ~30 kbp
/// long reads fit comfortably ((3e4)^2 < 2^30); anything bigger is a
/// pathological pair that would blow memory, not a real overlap candidate.
constexpr u64 kDefaultSwCellBudget = u64{1} << 30;

/// Full Smith-Waterman with traceback. Quadratic time and memory (traceback
/// matrix); intended for tests and short sequences. When
/// (n+1)*(m+1) > cell_budget (and cell_budget != 0), falls back to the
/// score-only banded kernel with band = cell_budget / (2 * max(n, m)) and
/// increments ws.sw_band_fallbacks.
LocalAlignment smith_waterman(std::string_view a, std::string_view b,
                              const Scoring& scoring, Workspace& ws,
                              u64 cell_budget = kDefaultSwCellBudget);

/// Convenience overload with a throwaway workspace (tests, one-off calls).
/// The cell-budget guard still applies at its default value.
LocalAlignment smith_waterman(std::string_view a, std::string_view b,
                              const Scoring& scoring);

/// Banded Smith-Waterman: only cells with |i - j| <= band are evaluated
/// (score and end positions only, no traceback). The "limited number of
/// mismatches" optimization of §2 that makes pairwise alignment linear in L.
LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     const Scoring& scoring, i64 band,
                                     Workspace& ws);

/// Convenience overload with a throwaway workspace (tests, one-off calls).
LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     const Scoring& scoring, i64 band);

}  // namespace dibella::align
