#pragma once
/// \file smith_waterman.hpp
/// Exact pairwise alignment kernels: full Smith-Waterman local alignment
/// (O(nm), the paper's §2 baseline formulation) and a banded variant.
/// These are the correctness oracles for the x-drop kernel and the
/// comparison points for the computational-cost discussion in §2-3.

#include <string_view>

#include "align/scoring.hpp"
#include "util/common.hpp"

namespace dibella::align {

struct LocalAlignment {
  int score = 0;
  /// Half-open aligned spans; all zero when the best local score is 0.
  u64 a_begin = 0, a_end = 0;
  u64 b_begin = 0, b_end = 0;
  u64 cells = 0;  ///< DP cells evaluated
};

/// Full Smith-Waterman with traceback. Quadratic time and memory (traceback
/// matrix); intended for tests and short sequences.
LocalAlignment smith_waterman(std::string_view a, std::string_view b,
                              const Scoring& scoring);

/// Banded Smith-Waterman: only cells with |i - j| <= band are evaluated
/// (score and end positions only, no traceback). The "limited number of
/// mismatches" optimization of §2 that makes pairwise alignment linear in L.
LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     const Scoring& scoring, i64 band);

}  // namespace dibella::align
