#include "align/chain.hpp"

#include <algorithm>
#include <bit>

namespace dibella::align {

namespace {

/// One seed in chaining coordinates: strictly increasing (x, y) along a
/// consistent overlap. y is b-forward for same-orientation seeds and
/// b-reverse-complement for opposite-orientation seeds.
struct Anchor {
  u32 x = 0;
  u32 y = 0;
  u32 seed = 0;  ///< index into the original seed list
};

/// Integer gap cost, shaped like minimap2's 0.01*k*dd + 0.5*log2(dd):
/// linear in the diagonal drift with a logarithmic floor, zero for perfectly
/// diagonal links.
inline i64 gap_cost(i64 dd, int k) {
  if (dd == 0) return 0;
  return (dd * k) / 100 + static_cast<i64>(std::bit_width(static_cast<u64>(dd)));
}

/// Best chain over one orientation group. Returns the chain score (< 0 when
/// the group is empty) and fills the representative/extent outputs.
i64 chain_group(std::vector<Anchor>& anchors, const ChainParams& p, u32* rep_seed,
                u32* chain_len, u32* span_a, u32* span_b) {
  if (anchors.empty()) return -1;
  std::sort(anchors.begin(), anchors.end(), [](const Anchor& l, const Anchor& r) {
    return l.x != r.x ? l.x < r.x : l.y < r.y;
  });

  const std::size_t n = anchors.size();
  const i64 k = p.k;
  std::vector<i64> f(n, k);
  std::vector<i32> parent(n, -1);
  std::size_t best_i = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t lo = i > p.max_lookback ? i - p.max_lookback : 0;
    for (std::size_t j = i; j-- > lo;) {
      const i64 dx = static_cast<i64>(anchors[i].x) - static_cast<i64>(anchors[j].x);
      const i64 dy = static_cast<i64>(anchors[i].y) - static_cast<i64>(anchors[j].y);
      if (dx <= 0 || dy <= 0) continue;  // not colinear (seeds are deduplicated)
      if (dx > p.max_gap || dy > p.max_gap) continue;
      const i64 dd = dx > dy ? dx - dy : dy - dx;
      if (dd > p.max_drift) continue;
      const i64 gain = std::min({dx, dy, k});
      const i64 s = f[j] + gain - gap_cost(dd, p.k);
      // Strict > keeps the smallest-index predecessor on ties: with the
      // sorted order fixed, the whole traceback is deterministic.
      if (s > f[i]) {
        f[i] = s;
        parent[i] = static_cast<i32>(j);
      }
    }
    if (f[i] > f[best_i]) best_i = i;
  }

  // Walk the best chain to its start, counting links; the representative is
  // the middle anchor — interior anchors sit in the pair's shared region
  // even when the chain's ends brush read boundaries.
  u32 len = 1;
  for (i32 j = parent[best_i]; j >= 0; j = parent[static_cast<std::size_t>(j)]) ++len;
  std::size_t first_i = best_i;
  std::size_t mid = best_i;
  for (u32 step = 0; parent[first_i] >= 0; ++step) {
    first_i = static_cast<std::size_t>(parent[first_i]);
    if (step < len / 2) mid = first_i;
  }
  *rep_seed = anchors[mid].seed;
  *chain_len = len;
  *span_a = anchors[best_i].x - anchors[first_i].x + static_cast<u32>(p.k);
  *span_b = anchors[best_i].y - anchors[first_i].y + static_cast<u32>(p.k);
  return f[best_i];
}

}  // namespace

ChainResult chain_seeds(const std::vector<overlap::SeedPair>& seeds, u64 a_len,
                        u64 b_len, const ChainParams& params, u64* dropped) {
  ChainResult out;
  const u64 k = static_cast<u64>(params.k);

  // Split by orientation; only same-frame seeds can be colinear. Reverse
  // seeds move to b's RC frame (window at pos p forward starts at
  // b_len - k - p reversed), the frame stage 4 extends them in.
  std::vector<Anchor> fwd, rev;
  u64 usable = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const overlap::SeedPair& s = seeds[i];
    if (s.pos_a + k > a_len || s.pos_b + k > b_len) continue;  // corrupt seed
    ++usable;
    Anchor a;
    a.x = s.pos_a;
    a.seed = static_cast<u32>(i);
    if (s.same_orientation) {
      a.y = s.pos_b;
      fwd.push_back(a);
    } else {
      a.y = static_cast<u32>(b_len - k - s.pos_b);
      rev.push_back(a);
    }
  }
  if (usable == 0) return out;

  u32 rep = 0, len = 0, sa = 0, sb = 0;
  const i64 score_f = chain_group(fwd, params, &rep, &len, &sa, &sb);
  if (score_f >= 0) {
    out.found = true;
    out.score = score_f;
    out.anchor = seeds[rep];
    out.anchors = len;
    out.span_a = sa;
    out.span_b = sb;
  }
  const i64 score_r = chain_group(rev, params, &rep, &len, &sa, &sb);
  // Strict >: the same-orientation chain wins score ties, a fixed rule that
  // keeps the selection deterministic.
  if (score_r >= 0 && (!out.found || score_r > out.score)) {
    out.found = true;
    out.score = score_r;
    out.anchor = seeds[rep];
    out.anchors = len;
    out.span_a = sa;
    out.span_b = sb;
  }
  if (dropped) *dropped += usable - 1;
  return out;
}

}  // namespace dibella::align
