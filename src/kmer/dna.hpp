#pragma once
/// \file dna.hpp
/// The DNA alphabet: 2-bit base codes, complements, and string-level
/// reverse-complement. Everything higher up (k-mers, simulators, aligners)
/// funnels through these primitives.

#include <string>
#include <string_view>

#include "util/common.hpp"

namespace dibella::kmer {

/// 2-bit base codes. The complement of code c is (3 - c) with this ordering.
enum BaseCode : u8 { kA = 0, kC = 1, kG = 2, kT = 3 };

/// Map an ASCII base (case-insensitive) to its 2-bit code, or -1 when the
/// character is not one of ACGT (e.g. 'N'). Parsers must reset their rolling
/// window when they see -1.
inline int encode_base(char c) {
  switch (c) {
    case 'A': case 'a': return kA;
    case 'C': case 'c': return kC;
    case 'G': case 'g': return kG;
    case 'T': case 't': return kT;
    default: return -1;
  }
}

/// Inverse of encode_base for valid codes.
inline char decode_base(u8 code) {
  constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  return kBases[code & 3u];
}

/// Watson–Crick complement in code space: A<->T, C<->G.
inline u8 complement_code(u8 code) { return static_cast<u8>(3u - (code & 3u)); }

/// Complement of an ASCII base; non-ACGT characters map to 'N'.
inline char complement_base(char c) {
  int code = encode_base(c);
  return code < 0 ? 'N' : decode_base(complement_code(static_cast<u8>(code)));
}

/// Reverse complement of a sequence ('N's stay 'N').
std::string reverse_complement(std::string_view seq);

/// Reverse complement into a caller-owned buffer (replaced, capacity
/// reused) — the allocation-free form for hot loops. `out` must not alias
/// `seq`.
void reverse_complement_into(std::string_view seq, std::string& out);

/// True when every character of `seq` is one of ACGTacgt.
bool is_valid_dna(std::string_view seq);

/// Count of valid ACGT characters in `seq`.
std::size_t count_valid_bases(std::string_view seq);

}  // namespace dibella::kmer
