#pragma once
/// \file parser.hpp
/// Rolling extraction of canonical k-mers (and their in-read positions and
/// orientations) from a sequence, skipping windows containing non-ACGT
/// characters. This is the inner loop of pipeline stages 1 and 2, so it is a
/// header-only template taking a callback.

#include <string_view>

#include "kmer/kmer.hpp"

namespace dibella::kmer {

/// One canonical k-mer occurrence within a read.
struct Occurrence {
  Kmer kmer;         ///< canonical form
  u32 pos = 0;       ///< 0-based offset of the window start within the read
  bool is_forward = true;  ///< true when the canonical form equals the forward form
};

/// Invoke `fn(const Occurrence&)` for every k-mer window of `seq`.
/// Windows containing a non-ACGT character are skipped; the rolling state
/// resets after each invalid base, exactly as a production k-mer scanner
/// must. Reads shorter than k produce no occurrences.
template <class Fn>
void for_each_canonical_kmer(std::string_view seq, int k, Fn&& fn) {
  DIBELLA_CHECK(k >= 1 && k <= Kmer::max_k(), "k out of range");
  if (seq.size() < static_cast<std::size_t>(k)) return;
  Kmer fwd;
  Kmer rc;
  int run = 0;  // number of consecutive valid bases ending at current position
  for (std::size_t i = 0; i < seq.size(); ++i) {
    int code = encode_base(seq[i]);
    if (code < 0) {
      run = 0;
      fwd = Kmer{};
      rc = Kmer{};
      continue;
    }
    fwd.append(static_cast<u8>(code), k);
    rc.rc_prepend(static_cast<u8>(code), k);
    if (run < k) ++run;
    if (run >= k) {
      Occurrence occ;
      bool fwd_is_canonical = fwd <= rc;
      occ.kmer = fwd_is_canonical ? fwd : rc;
      occ.pos = static_cast<u32>(i + 1 - static_cast<std::size_t>(k));
      occ.is_forward = fwd_is_canonical;
      fn(static_cast<const Occurrence&>(occ));
    }
  }
}

/// Number of k-mer windows a sequence of length n contributes (ignoring
/// invalid characters): max(0, n - k + 1). The paper approximates this as ~n
/// for long reads (§3, Eq. 2).
inline u64 window_count(std::size_t n, int k) {
  return n >= static_cast<std::size_t>(k) ? static_cast<u64>(n - static_cast<std::size_t>(k) + 1)
                                          : 0;
}

}  // namespace dibella::kmer
