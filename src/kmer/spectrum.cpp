#include "kmer/spectrum.hpp"

#include "kmer/parser.hpp"

namespace dibella::kmer {

CountMap count_canonical(const std::vector<std::string>& seqs, int k) {
  CountMap counts;
  for (const auto& s : seqs) {
    for_each_canonical_kmer(s, k, [&](const Occurrence& occ) { ++counts[occ.kmer]; });
  }
  return counts;
}

util::Histogram frequency_spectrum(const CountMap& counts) {
  util::Histogram h;
  for (const auto& [km, c] : counts) {
    (void)km;
    h.add(c);
  }
  return h;
}

u64 distinct_in_range(const CountMap& counts, u64 lo, u64 hi) {
  u64 n = 0;
  for (const auto& [km, c] : counts) {
    (void)km;
    if (c >= lo && c <= hi) ++n;
  }
  return n;
}

}  // namespace dibella::kmer
