#pragma once
/// \file occurrence_stream.hpp
/// Resumable, memory-bounded k-mer scan over a rank's reads.
///
/// The pipeline makes two passes over the input (§4) and "executes in a
/// streaming fashion with a subset of input data at a time to limit the
/// memory consumption". This stream supports that: fill() emits up to a
/// budget of k-mer occurrences and can be resumed, pausing at read
/// granularity (a single long read may overshoot the budget by its own
/// k-mer count, which is the same granularity the paper's implementation
/// batches at).
///
/// Two iteration sources share identical fill() semantics: a resident read
/// vector, or a ReadStore walked lazily in gid order (the out-of-core path —
/// gid-order iteration loads each packed block exactly once, and the pause
/// points depend only on the budget and per-read k-mer counts, so the
/// emission sequence and batch boundaries are bitwise-independent of the
/// block count).

#include <vector>

#include "io/read.hpp"
#include "io/read_store.hpp"
#include "kmer/parser.hpp"
#include "sketch/sketch.hpp"

namespace dibella::kmer {

class OccurrenceStream {
 public:
  OccurrenceStream(const std::vector<io::Read>& reads, int k,
                   const sketch::SketchConfig& sk = {})
      : reads_(&reads), count_(reads.size()), k_(k), sketcher_(k, sk) {}

  /// Iterate a rank's owned reads through the store (block-mode safe).
  OccurrenceStream(const io::ReadStore& store, int k,
                   const sketch::SketchConfig& sk = {})
      : store_(&store),
        first_gid_(store.first_local_gid()),
        count_(static_cast<std::size_t>(store.local_count())),
        k_(k),
        sketcher_(k, sk) {}

  /// Emit occurrences of whole reads until at least `budget` occurrences
  /// have been produced in this call (or input is exhausted). With a sketch
  /// config the emission is the read's minimizer (or syncmer) sample — a
  /// pure per-read selection, so pause points still depend only on the
  /// budget and per-read seed counts and the stream keeps its bitwise
  /// block-count independence.
  /// fn(u64 rid, const Occurrence&). Returns true while input remains.
  template <class Fn>
  bool fill(u64 budget, Fn&& fn) {
    u64 produced = 0;
    while (next_read_ < count_ && produced < budget) {
      const io::Read& r = store_ ? store_->local_read(first_gid_ + next_read_)
                                 : (*reads_)[next_read_];
      sketcher_.for_each_seed(r.seq, [&](const Occurrence& occ) {
        fn(r.gid, occ);
        ++produced;
      });
      ++next_read_;
    }
    return next_read_ < count_;
  }

  bool exhausted() const { return next_read_ >= count_; }

  void reset() { next_read_ = 0; }

  /// Windows scanned / seeds kept so far (cumulative across fill calls).
  const sketch::SketchStats& sketch_stats() const { return sketcher_.stats(); }

 private:
  const std::vector<io::Read>* reads_ = nullptr;
  const io::ReadStore* store_ = nullptr;
  u64 first_gid_ = 0;
  std::size_t count_ = 0;
  int k_;
  std::size_t next_read_ = 0;
  sketch::Sketcher sketcher_;
};

}  // namespace dibella::kmer
