#include "kmer/dna.hpp"

#include <algorithm>

namespace dibella::kmer {

std::string reverse_complement(std::string_view seq) {
  std::string out;
  reverse_complement_into(seq, out);
  return out;
}

void reverse_complement_into(std::string_view seq, std::string& out) {
  out.resize(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out[seq.size() - 1 - i] = complement_base(seq[i]);
  }
}

bool is_valid_dna(std::string_view seq) {
  return std::all_of(seq.begin(), seq.end(), [](char c) { return encode_base(c) >= 0; });
}

std::size_t count_valid_bases(std::string_view seq) {
  return static_cast<std::size_t>(
      std::count_if(seq.begin(), seq.end(), [](char c) { return encode_base(c) >= 0; }));
}

}  // namespace dibella::kmer
