#pragma once
/// \file spectrum.hpp
/// Serial, single-node k-mer counting and frequency-spectrum helpers. These
/// act as the trusted oracle the distributed Bloom/hash stages are tested
/// against, and feed the DALIGNER-like baseline.

#include <string>
#include <unordered_map>
#include <vector>

#include "kmer/kmer.hpp"
#include "util/histogram.hpp"

namespace dibella::kmer {

/// Canonical k-mer -> number of occurrences across all sequences.
using CountMap = std::unordered_map<Kmer, u64, KmerHasher>;

/// Count canonical k-mers of all sequences serially (test oracle).
CountMap count_canonical(const std::vector<std::string>& seqs, int k);

/// Frequency spectrum (multiplicity -> number of distinct k-mers with it).
util::Histogram frequency_spectrum(const CountMap& counts);

/// Number of distinct k-mers with multiplicity in [lo, hi].
u64 distinct_in_range(const CountMap& counts, u64 lo, u64 hi);

}  // namespace dibella::kmer
