#pragma once
/// \file kmer.hpp
/// Fixed-capacity 2-bit packed k-mer.
///
/// Following the paper (§3), each base of the {A,C,G,T} alphabet is stored in
/// 2 bits and the k-mer representation width is a compile-time parameter
/// (PackedKmer<MAX_K>); the runtime k may be anything in [1, MAX_K]. The
/// value is kept as a big integer equal to
///     base0 * 4^(k-1) + base1 * 4^(k-2) + ... + base_{k-1}
/// so that numeric comparison of the packed words equals lexicographic
/// comparison of the base string — which makes canonicalization (min of the
/// forward form and its reverse complement) a straight word compare.

#include <array>
#include <compare>
#include <string>
#include <string_view>

#include "kmer/dna.hpp"
#include "util/common.hpp"
#include "util/random.hpp"

namespace dibella::kmer {

template <int MAX_K>
class PackedKmer {
  static_assert(MAX_K >= 1 && MAX_K <= 1024, "unreasonable MAX_K");

 public:
  /// Number of 64-bit words backing the representation.
  static constexpr int kWords = (2 * MAX_K + 63) / 64;
  static constexpr int max_k() { return MAX_K; }

  constexpr PackedKmer() = default;

  /// Parse the first k characters of `s` (must all be valid ACGT).
  static PackedKmer from_string(std::string_view s, int k) {
    DIBELLA_CHECK(k >= 1 && k <= MAX_K, "k out of range for PackedKmer");
    DIBELLA_CHECK(s.size() >= static_cast<std::size_t>(k), "string shorter than k");
    PackedKmer out;
    for (int i = 0; i < k; ++i) {
      int code = encode_base(s[static_cast<std::size_t>(i)]);
      DIBELLA_CHECK(code >= 0, "invalid base in k-mer string");
      out.append(static_cast<u8>(code), k);
    }
    return out;
  }

  /// Roll the window one base forward: drop the front base, append `code` at
  /// the back. Also correct for building up from empty (bases simply shift in).
  void append(u8 code, int k) {
    shift_left2();
    w_[0] |= static_cast<u64>(code & 3u);
    mask_to(k);
  }

  /// Roll the *reverse-complement* window one base forward: with the forward
  /// window appending `code`, the RC window prepends complement(code) at the
  /// front. Callers keep a forward and an RC PackedKmer in lockstep to get
  /// canonical forms in O(1) per base.
  void rc_prepend(u8 code, int k) {
    shift_right2();
    set_base_raw(0, complement_code(code), k);
  }

  /// Base at position i (0 = leftmost / first base), for runtime width k.
  u8 get_base(int i, int k) const {
    int bit = 2 * (k - 1 - i);
    return static_cast<u8>((w_[static_cast<std::size_t>(bit / 64)] >> (bit % 64)) & 3u);
  }

  /// ASCII rendering of the k-mer.
  std::string to_string(int k) const {
    std::string s(static_cast<std::size_t>(k), '?');
    for (int i = 0; i < k; ++i) s[static_cast<std::size_t>(i)] = decode_base(get_base(i, k));
    return s;
  }

  /// Reverse complement as a new k-mer.
  PackedKmer reverse_complement(int k) const {
    PackedKmer out;
    for (int i = 0; i < k; ++i) {
      out.append(complement_code(get_base(k - 1 - i, k)), k);
    }
    return out;
  }

  /// Canonical form: lexicographic minimum of this k-mer and its reverse
  /// complement. `is_forward` (if given) is set to true when the forward form
  /// was chosen (ties count as forward).
  PackedKmer canonical(int k, bool* is_forward = nullptr) const {
    PackedKmer rc = reverse_complement(k);
    bool fwd = !(rc < *this);
    if (is_forward) *is_forward = fwd;
    return fwd ? *this : rc;
  }

  /// 64-bit hash of the packed value, salted; different salts give the
  /// independent hash functions needed by the Bloom filter and the
  /// owner-assignment hash.
  u64 hash(u64 salt = 0) const {
    u64 h = util::mix64(salt ^ 0x9ddfea08eb382d69ull);
    for (int i = 0; i < kWords; ++i) h = util::mix64(h ^ w_[static_cast<std::size_t>(i)]);
    return h;
  }

  friend bool operator==(const PackedKmer& a, const PackedKmer& b) { return a.w_ == b.w_; }

  friend bool operator<(const PackedKmer& a, const PackedKmer& b) {
    for (int i = kWords - 1; i >= 0; --i) {
      if (a.w_[static_cast<std::size_t>(i)] != b.w_[static_cast<std::size_t>(i)]) {
        return a.w_[static_cast<std::size_t>(i)] < b.w_[static_cast<std::size_t>(i)];
      }
    }
    return false;
  }

  friend bool operator<=(const PackedKmer& a, const PackedKmer& b) { return !(b < a); }

  /// Raw packed words (little-endian word order), for serialization.
  const std::array<u64, static_cast<std::size_t>(kWords)>& words() const { return w_; }
  std::array<u64, static_cast<std::size_t>(kWords)>& words() { return w_; }

 private:
  void shift_left2() {
    for (int i = kWords - 1; i > 0; --i) {
      w_[static_cast<std::size_t>(i)] = (w_[static_cast<std::size_t>(i)] << 2) |
                                        (w_[static_cast<std::size_t>(i - 1)] >> 62);
    }
    w_[0] <<= 2;
  }

  void shift_right2() {
    for (int i = 0; i + 1 < kWords; ++i) {
      w_[static_cast<std::size_t>(i)] = (w_[static_cast<std::size_t>(i)] >> 2) |
                                        (w_[static_cast<std::size_t>(i + 1)] << 62);
    }
    w_[static_cast<std::size_t>(kWords - 1)] >>= 2;
  }

  void set_base_raw(int i, u8 code, int k) {
    int bit = 2 * (k - 1 - i);
    auto word = static_cast<std::size_t>(bit / 64);
    int off = bit % 64;
    w_[word] = (w_[word] & ~(u64{3} << off)) | (static_cast<u64>(code & 3u) << off);
  }

  void mask_to(int k) {
    int bits = 2 * k;
    for (int i = 0; i < kWords; ++i) {
      int lo = 64 * i;
      if (bits <= lo) {
        w_[static_cast<std::size_t>(i)] = 0;
      } else if (bits < lo + 64) {
        w_[static_cast<std::size_t>(i)] &= (u64{1} << (bits - lo)) - 1;
      }
    }
  }

  std::array<u64, static_cast<std::size_t>(kWords)> w_ = {};
};

/// Project-wide default k-mer width: k up to 32 packs into a single 64-bit
/// word, covering the paper's k range (11–21, typically 17) with headroom.
/// Override with -DDIBELLA_MAX_K=<n> for longer seeds.
#ifndef DIBELLA_MAX_K
#define DIBELLA_MAX_K 32
#endif
using Kmer = PackedKmer<DIBELLA_MAX_K>;

/// Hash functor for unordered containers keyed by k-mers.
struct KmerHasher {
  std::size_t operator()(const Kmer& km) const { return static_cast<std::size_t>(km.hash()); }
};

}  // namespace dibella::kmer
